//! Typed failures for the TCAM hardware models.
//!
//! The CAM crate's configuration surface used to validate with asserts
//! only; builders' `build()` now returns `Result<_, CamError>` so a
//! search driver (the DSE engine in particular) can probe candidate
//! configurations without tripping panics.

use std::error::Error;
use std::fmt;

/// Why a CAM configuration or operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CamError {
    /// A configuration violated a structural constraint.
    InvalidConfig {
        /// Which constraint failed.
        reason: &'static str,
    },
}

impl fmt::Display for CamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CamError::InvalidConfig { reason } => write!(f, "invalid TCAM config: {reason}"),
        }
    }
}

impl Error for CamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_constraint() {
        let e = CamError::InvalidConfig { reason: "segments must be at least 1" };
        assert!(e.to_string().contains("segments"), "{e}");
    }
}
