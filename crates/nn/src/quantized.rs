//! Reduced-precision *inference* (paper Sec. II): "state-of-the-art
//! classification accuracy across a range of popular models and datasets
//! is achievable with just 2-bit integer weights and activations \[13\]".
//!
//! The module implements the two calibration ideas that paragraph
//! credits: a statistical (max-abs percentile) scaling factor for weight
//! quantization, and a clipping parameter for activation quantization
//! chosen from observed activation statistics (the optimized-clip idea of
//! PACT-style methods, approximated post-training by percentile
//! calibration).

use crate::backend::LinearBackend;
use crate::data::Dataset;
use crate::mlp::Mlp;
use crate::DigitalLinear;
use enw_numerics::matrix::Matrix;
use enw_numerics::quant::Quantizer;
use enw_numerics::stats::quantile;
use enw_numerics::vector::argmax;

/// Quantization settings for inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceQuant {
    /// Weight bit width (2–8 useful).
    pub weight_bits: u32,
    /// Activation bit width.
    pub activation_bits: u32,
    /// Percentile (0–1] of |weight| used as the clipping range — the
    /// "statistical method to determine a scaling factor that minimizes
    /// the weight quantization error".
    pub weight_percentile: f64,
    /// Percentile of |activation| used as the activation clip (the
    /// trained clipping parameter, calibrated post-hoc).
    pub activation_percentile: f64,
}

impl Default for InferenceQuant {
    fn default() -> Self {
        InferenceQuant {
            weight_bits: 8,
            activation_bits: 8,
            weight_percentile: 0.999,
            activation_percentile: 0.995,
        }
    }
}

/// A quantized snapshot of a trained MLP, executing integer-grid weights
/// and activations.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    /// Per-layer quantized weight matrices (dequantized values on the
    /// integer grid).
    layers: Vec<Matrix>,
    /// Per-layer activation quantizers (calibrated clip + step).
    act_quant: Vec<Quantizer>,
    activations: Vec<crate::activation::Activation>,
}

impl QuantizedMlp {
    /// Quantizes a trained digital MLP, calibrating activation clips on
    /// `calibration` inputs.
    ///
    /// # Panics
    ///
    /// Panics if the calibration set is empty or bit widths are out of
    /// the supported `2..=16` range.
    pub fn from_mlp(
        mlp: &mut Mlp<DigitalLinear>,
        cfg: &InferenceQuant,
        calibration: &Dataset,
    ) -> Self {
        assert!(!calibration.is_empty(), "need calibration samples");
        // Collect per-layer activation magnitudes over the calibration set.
        let n_layers = mlp.layers().len();
        let mut act_samples: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        for i in 0..calibration.len().min(200) {
            let mut a = calibration.input(i).to_vec();
            for (l, layer) in mlp.layers_mut().iter_mut().enumerate() {
                a = layer.infer(&a);
                act_samples[l].extend(a.iter().map(|v| v.abs() as f64));
            }
        }
        let mut layers = Vec::with_capacity(n_layers);
        let mut act_quant = Vec::with_capacity(n_layers);
        let mut activations = Vec::with_capacity(n_layers);
        for (l, layer) in mlp.layers().iter().enumerate() {
            let w = layer.backend().weights();
            // Statistical weight scale: percentile of |w| instead of max.
            let mags: Vec<f64> = w.as_slice().iter().map(|v| v.abs() as f64).collect();
            let clip = quantile(&mags, cfg.weight_percentile).max(1e-6) as f32;
            let wq = Quantizer::new(cfg.weight_bits, clip);
            let mut m = w.clone();
            m.map_inplace(|v| wq.round_trip(v));
            layers.push(m);
            // Activation clip from calibration percentile.
            let a_clip = if act_samples[l].is_empty() {
                1.0
            } else {
                quantile(&act_samples[l], cfg.activation_percentile).max(1e-6) as f32
            };
            act_quant.push(Quantizer::new(cfg.activation_bits, a_clip));
            activations.push(layer.activation());
        }
        QuantizedMlp { layers, act_quant, activations }
    }

    /// Quantized-inference logits for one input.
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    pub fn predict(&self, x: &[f32]) -> Vec<f32> {
        let mut a = x.to_vec();
        for ((w, act), aq) in self.layers.iter().zip(&self.activations).zip(&self.act_quant) {
            assert_eq!(a.len() + 1, w.cols(), "input width mismatch");
            let mut xa = a.clone();
            xa.push(1.0);
            let mut z = w.matvec(&xa);
            for v in &mut z {
                *v = aq.round_trip(act.apply(*v));
            }
            a = z;
        }
        a
    }

    /// Predicted class.
    pub fn classify(&self, x: &[f32]) -> usize {
        argmax(&self.predict(x))
    }

    /// Accuracy over a dataset.
    pub fn evaluate(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct =
            (0..data.len()).filter(|&i| self.classify(data.input(i)) == data.label(i)).count();
        correct as f64 / data.len() as f64
    }
}

/// Quantization-aware fine-tuning with the straight-through estimator:
/// each SGD step runs forward/backward on the *quantized* weights but
/// accumulates the update into a full-precision master copy — the
/// "proper algorithmic advances" that make very low-bit inference work
/// (refs. \[11\]\[13\] of the paper).
///
/// Returns the per-epoch mean loss.
///
/// # Panics
///
/// Panics on empty data or unsupported bit widths.
pub fn quantization_aware_finetune(
    mlp: &mut Mlp<DigitalLinear>,
    cfg: &InferenceQuant,
    data: &Dataset,
    epochs: usize,
    lr: f32,
    rng: &mut enw_numerics::rng::Rng64,
) -> Vec<f64> {
    assert!(!data.is_empty(), "need training samples");
    // Calibrate the activation quantizers once on the starting network
    // (the trained clipping parameter, held fixed during fine-tuning).
    let act_quant: Vec<Quantizer> = QuantizedMlp::from_mlp(mlp, cfg, data).act_quant;
    // Full-precision masters.
    let mut masters: Vec<Matrix> = mlp.layers().iter().map(|l| l.backend().weights()).collect();
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut history = Vec::with_capacity(epochs);
    let n_layers = masters.len();
    for _ in 0..epochs {
        rng.shuffle(&mut order);
        let mut total = 0.0f64;
        for &i in &order {
            // Project masters onto the quantization grid (per-layer
            // percentile clip).
            let mut quantized = Vec::with_capacity(masters.len());
            for m in &masters {
                let mags: Vec<f64> = m.as_slice().iter().map(|v| v.abs() as f64).collect();
                let clip = quantile(&mags, cfg.weight_percentile).max(1e-6) as f32;
                let q = Quantizer::new(cfg.weight_bits, clip);
                let mut qm = m.clone();
                qm.map_inplace(|v| q.round_trip(v));
                quantized.push(qm);
            }
            for (layer, qm) in mlp.layers_mut().iter_mut().zip(&quantized) {
                layer.backend_mut().set_weights(qm.clone());
            }
            // Forward at the quantized point, fake-quantizing the hidden
            // activations so training sees exactly the deployment grid.
            let mut a = data.input(i).to_vec();
            for (l, layer) in mlp.layers_mut().iter_mut().enumerate() {
                a = layer.forward(&a);
                if l + 1 < n_layers {
                    for v in &mut a {
                        *v = act_quant[l].round_trip(*v);
                    }
                }
            }
            let (loss, mut grad) = crate::loss::softmax_cross_entropy(&a, data.label(i));
            total += loss as f64;
            // Backward with the straight-through estimator (activation
            // quantization passes gradients unchanged).
            for layer in mlp.layers_mut().iter_mut().rev() {
                grad = layer.backward(&grad);
            }
            for layer in mlp.layers_mut().iter_mut() {
                layer.apply_update(lr);
            }
            // Route the realized update into the masters (weight STE).
            for ((layer, qm), master) in
                mlp.layers_mut().iter_mut().zip(&quantized).zip(&mut masters)
            {
                let mut delta = layer.backend().weights();
                delta.axpy(-1.0, qm);
                master.axpy(1.0, &delta);
            }
        }
        history.push(total / data.len() as f64);
    }
    // Leave the network holding the masters (quantize at deployment via
    // QuantizedMlp::from_mlp).
    for (layer, master) in mlp.layers_mut().iter_mut().zip(&masters) {
        layer.backend_mut().set_weights(master.clone());
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::data::SyntheticImages;
    use crate::mlp::SgdConfig;
    use enw_numerics::rng::Rng64;

    fn trained_pair() -> (Mlp<DigitalLinear>, crate::data::Split) {
        let mut rng = Rng64::new(1);
        let split = SyntheticImages::builder()
            .classes(5)
            .dim(36)
            .train_per_class(50)
            .test_per_class(25)
            .noise(0.6)
            .build(&mut rng);
        let mut mlp = Mlp::digital(&[36, 24, 5], Activation::Tanh, &mut rng);
        mlp.train_sgd(&split.train, &SgdConfig { epochs: 8, learning_rate: 0.05 }, &mut rng);
        (mlp, split)
    }

    #[test]
    fn int8_matches_fp32_closely() {
        let (mut mlp, split) = trained_pair();
        let fp = mlp.evaluate(&split.test);
        let q = QuantizedMlp::from_mlp(&mut mlp, &InferenceQuant::default(), &split.train);
        let qa = q.evaluate(&split.test);
        assert!(fp > 0.8, "baseline failed: {fp}");
        assert!(qa > fp - 0.03, "int8 {qa} vs fp {fp}");
    }

    #[test]
    fn two_bit_needs_and_gets_quantization_aware_training() {
        // The paper's [13] claim at workspace scale: naive post-training
        // 2-bit quantization collapses, but quantization-aware
        // fine-tuning ("proper algorithmic advances") restores accuracy
        // near the FP32 baseline.
        let (mut mlp, split) = trained_pair();
        let fp = mlp.evaluate(&split.test);
        // At 2 bits (3 symmetric levels) the clip must sit near the bulk
        // of the weight distribution — a tail percentile would round
        // almost every weight to zero.
        let cfg = InferenceQuant {
            weight_bits: 2,
            activation_bits: 2,
            weight_percentile: 0.75,
            ..Default::default()
        };
        let naive = QuantizedMlp::from_mlp(&mut mlp, &cfg, &split.train).evaluate(&split.test);
        let mut rng = Rng64::new(99);
        quantization_aware_finetune(&mut mlp, &cfg, &split.train, 12, 0.03, &mut rng);
        let qat = QuantizedMlp::from_mlp(&mut mlp, &cfg, &split.train).evaluate(&split.test);
        assert!(qat > naive + 0.05, "QAT {qat} barely beat naive {naive}");
        assert!(qat > fp - 0.25, "QAT {qat} too far below FP {fp}");
    }

    #[test]
    fn accuracy_monotone_in_bits() {
        let (mut mlp, split) = trained_pair();
        let acc = |bits: u32, mlp: &mut Mlp<DigitalLinear>| {
            let cfg =
                InferenceQuant { weight_bits: bits, activation_bits: bits, ..Default::default() };
            QuantizedMlp::from_mlp(mlp, &cfg, &split.train).evaluate(&split.test)
        };
        let a8 = acc(8, &mut mlp);
        let a2 = acc(2, &mut mlp);
        assert!(a8 + 1e-9 >= a2, "8-bit {a8} must not trail 2-bit {a2}");
    }

    #[test]
    fn percentile_clip_beats_max_at_low_bits() {
        // With outlier weights, percentile calibration preserves more
        // resolution than max-abs — the "statistical scaling" claim.
        let (mut mlp, split) = trained_pair();
        let stat = InferenceQuant { weight_bits: 3, activation_bits: 8, ..Default::default() };
        let maxabs = InferenceQuant {
            weight_bits: 3,
            activation_bits: 8,
            weight_percentile: 1.0,
            ..Default::default()
        };
        let a_stat = QuantizedMlp::from_mlp(&mut mlp, &stat, &split.train).evaluate(&split.test);
        let a_max = QuantizedMlp::from_mlp(&mut mlp, &maxabs, &split.train).evaluate(&split.test);
        assert!(a_stat + 0.08 >= a_max, "stat {a_stat} vs max {a_max}");
    }

    #[test]
    fn quantized_outputs_lie_on_grid() {
        let (mut mlp, split) = trained_pair();
        let cfg = InferenceQuant { weight_bits: 4, activation_bits: 4, ..Default::default() };
        let q = QuantizedMlp::from_mlp(&mut mlp, &cfg, &split.train);
        let out = q.predict(split.test.input(0));
        let step = q.act_quant.last().expect("layers").step();
        for v in out {
            let ratio = v / step;
            assert!((ratio - ratio.round()).abs() < 1e-3, "{v} not on grid of {step}");
        }
    }
}
