//! Byte-exact state serialization for checkpoint/resume.
//!
//! Long analog-training runs checkpoint mid-flight and must resume
//! **bit-identically**: the checkpoint has to carry every piece of
//! mutable state — conductances, RNG streams, counters, the virtual
//! clock — as exact bit patterns, because a single rounded float would
//! fork the stochastic pulse streams and diverge the rest of the run.
//!
//! This module is the (std-only) wire format those checkpoints share:
//! a flat little-endian byte stream written by [`StateWriter`] and
//! consumed by [`StateReader`]. Floats travel as raw bit patterns
//! (`to_bits`/`from_bits`), so a round trip can never perturb a value.
//! There is no schema in the stream beyond what callers write; each
//! saveable type writes a short tag (see [`StateWriter::tag`]) so a
//! mismatched restore fails with a typed [`SnapshotError`] instead of
//! reading garbage.
//!
//! # Example
//!
//! ```
//! use enw_nn::snapshot::{StateReader, StateWriter};
//!
//! let mut w = StateWriter::new();
//! w.tag(b"DEMO");
//! w.u64(42);
//! w.f32_slice(&[1.5, -0.25]);
//! let bytes = w.into_bytes();
//!
//! let mut r = StateReader::new(&bytes);
//! r.expect_tag(b"DEMO").unwrap();
//! assert_eq!(r.u64().unwrap(), 42);
//! let mut buf = [0.0f32; 2];
//! r.f32_slice(&mut buf).unwrap();
//! assert_eq!(buf, [1.5, -0.25]);
//! assert!(r.finish().is_ok());
//! ```

use std::fmt;

/// Why a checkpoint restore failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream ended before the requested value.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes left in the stream.
        remaining: usize,
    },
    /// A section tag did not match the expected type.
    TagMismatch {
        /// Tag the caller expected.
        expected: [u8; 4],
        /// Tag found in the stream.
        found: [u8; 4],
    },
    /// A recorded dimension disagrees with the restoring object.
    ShapeMismatch {
        /// What dimension disagreed.
        what: &'static str,
        /// Value recorded in the checkpoint.
        recorded: u64,
        /// Value the restoring object expects.
        expected: u64,
    },
    /// Bytes were left over after a restore consumed its state.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, remaining } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, {remaining} remain")
            }
            SnapshotError::TagMismatch { expected, found } => write!(
                f,
                "checkpoint section tag mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            SnapshotError::ShapeMismatch { what, recorded, expected } => {
                write!(f, "checkpoint {what} mismatch: recorded {recorded}, expected {expected}")
            }
            SnapshotError::TrailingBytes { remaining } => {
                write!(f, "checkpoint has {remaining} trailing bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Appends checkpoint state to a growable byte buffer (little-endian,
/// floats as raw bits).
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> StateWriter {
        StateWriter::default()
    }

    /// Consumes the writer, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a 4-byte section tag (e.g. `b"TILE"`).
    pub fn tag(&mut self, tag: &[u8; 4]) {
        self.buf.extend_from_slice(tag);
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a single byte (0 or 1) for a flag.
    pub fn flag(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes an `f32` as its raw bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes a length-prefixed `f32` slice, each element as raw bits.
    pub fn f32_slice(&mut self, vs: &[f32]) {
        self.u64(vs.len() as u64);
        for v in vs {
            self.f32(*v);
        }
    }
}

/// Reads checkpoint state back out of a byte slice, validating length
/// and section tags as it goes.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> StateReader<'a> {
        StateReader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads a 4-byte section tag and checks it.
    pub fn expect_tag(&mut self, expected: &[u8; 4]) -> Result<(), SnapshotError> {
        let found = self.take_array::<4>()?;
        if &found != expected {
            return Err(SnapshotError::TagMismatch { expected: *expected, found });
        }
        Ok(())
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a flag byte (any non-zero byte is `true`).
    pub fn flag(&mut self) -> Result<bool, SnapshotError> {
        let [b] = self.take_array::<1>()?;
        Ok(b != 0)
    }

    /// Reads an `f32` from its raw bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a length-prefixed `f32` slice into `out`, whose length must
    /// match the recorded length exactly.
    pub fn f32_slice(&mut self, out: &mut [f32]) -> Result<(), SnapshotError> {
        let n = self.u64()?;
        if n != out.len() as u64 {
            return Err(SnapshotError::ShapeMismatch {
                what: "f32 slice length",
                recorded: n,
                expected: out.len() as u64,
            });
        }
        for v in out.iter_mut() {
            *v = self.f32()?;
        }
        Ok(())
    }

    /// Checks that the whole stream was consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes { remaining: self.remaining() });
        }
        Ok(())
    }
}

/// Checks a recorded dimension against the restoring object's.
pub fn check_dim(what: &'static str, recorded: u64, expected: u64) -> Result<(), SnapshotError> {
    if recorded != expected {
        return Err(SnapshotError::ShapeMismatch { what, recorded, expected });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_bits() {
        let values = [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::NAN, f32::INFINITY];
        let mut w = StateWriter::new();
        w.tag(b"TEST");
        w.u64(u64::MAX);
        w.u32(7);
        w.flag(true);
        w.flag(false);
        w.f32_slice(&values);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        r.expect_tag(b"TEST").unwrap();
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u32().unwrap(), 7);
        assert!(r.flag().unwrap());
        assert!(!r.flag().unwrap());
        let mut out = [0.0f32; 6];
        r.f32_slice(&mut out).unwrap();
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit pattern must survive the round trip");
        }
        r.finish().unwrap();
    }

    #[test]
    fn truncated_stream_is_detected() {
        let mut w = StateWriter::new();
        w.u64(9);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(SnapshotError::Truncated { .. })));
    }

    #[test]
    fn tag_mismatch_is_detected() {
        let mut w = StateWriter::new();
        w.tag(b"AAAA");
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let err = r.expect_tag(b"BBBB").unwrap_err();
        assert!(matches!(err, SnapshotError::TagMismatch { .. }), "{err}");
    }

    #[test]
    fn slice_length_mismatch_is_detected() {
        let mut w = StateWriter::new();
        w.f32_slice(&[1.0, 2.0]);
        let bytes = w.into_bytes();
        let mut out = [0.0f32; 3];
        let mut r = StateReader::new(&bytes);
        assert!(matches!(r.f32_slice(&mut out), Err(SnapshotError::ShapeMismatch { .. })));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = StateWriter::new();
        w.u32(1);
        w.u32(2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        r.u32().unwrap();
        assert_eq!(r.finish(), Err(SnapshotError::TrailingBytes { remaining: 4 }));
    }
}
