//! Minimal recurrent networks (Elman RNN with backpropagation through
//! time).
//!
//! RNNs are the paper's canonical language/sequence workload (Sec. I), a
//! standard MANN controller ("typically a feedforward or recurrent deep
//! NN", Sec. III), and part of emerging recommendation models (Sec. V-B).
//! This module provides the sequence-classification substrate: a tanh
//! recurrent cell, a linear head on the final hidden state, and full
//! BPTT with gradient clipping.

use crate::backend::{DigitalLinear, LinearBackend};
use crate::loss::softmax_cross_entropy;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;
use enw_numerics::vector::argmax;

/// An Elman recurrent cell: `h_t = tanh(Wx·[x_t;1] + Wh·h_{t−1})`.
#[derive(Debug, Clone)]
pub struct RnnCell {
    /// Input weights, `hidden × (input + 1)` (bias column).
    wx: Matrix,
    /// Recurrent weights, `hidden × hidden`.
    wh: Matrix,
    in_dim: usize,
}

impl RnnCell {
    /// Xavier-initialized cell.
    pub fn new(in_dim: usize, hidden: usize, rng: &mut Rng64) -> Self {
        let lx = (6.0 / (in_dim + hidden) as f64).sqrt();
        let lh = (6.0 / (2 * hidden) as f64).sqrt();
        let mut wx = Matrix::random_uniform(hidden, in_dim + 1, -lx, lx, rng);
        for r in 0..hidden {
            wx.set(r, in_dim, 0.0);
        }
        RnnCell { wx, wh: Matrix::random_uniform(hidden, hidden, -lh, lh, rng), in_dim }
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.wh.rows()
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// One step: returns `(pre_activation, h_t)`.
    fn step(&self, x: &[f32], h_prev: &[f32]) -> (Vec<f32>, Vec<f32>) {
        assert_eq!(x.len(), self.in_dim, "input width mismatch");
        let mut xa = x.to_vec();
        xa.push(1.0);
        let mut pre = self.wx.matvec(&xa);
        let rec = self.wh.matvec(h_prev);
        for (p, r) in pre.iter_mut().zip(&rec) {
            *p += r;
        }
        let h = pre.iter().map(|z| z.tanh()).collect();
        (pre, h)
    }
}

/// Per-step BPTT cache: `(pre_activation, hidden_state)` for each
/// timestep.
type StepCaches = Vec<(Vec<f32>, Vec<f32>)>;

/// A sequence classifier: RNN cell unrolled over the sequence, linear
/// head on the final hidden state.
///
/// # Example
///
/// ```
/// use enw_nn::rnn::RnnClassifier;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut net = RnnClassifier::new(4, 8, 3, &mut rng);
/// let seq = vec![vec![0.1f32; 4]; 5];
/// let logits = net.predict(&seq);
/// assert_eq!(logits.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RnnClassifier {
    cell: RnnCell,
    head: DigitalLinear,
    /// Gradient-norm clip for BPTT stability.
    pub grad_clip: f32,
}

impl RnnClassifier {
    /// Builds a classifier with the given dimensions.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, rng: &mut Rng64) -> Self {
        RnnClassifier {
            cell: RnnCell::new(in_dim, hidden, rng),
            head: DigitalLinear::new(hidden, classes, rng),
            grad_clip: 5.0,
        }
    }

    /// Unrolls the cell over `sequence` and returns the final hidden
    /// state plus per-step caches `(pre, h)`.
    fn unroll(&self, sequence: &[Vec<f32>]) -> (StepCaches, Vec<f32>) {
        assert!(!sequence.is_empty(), "empty sequence");
        let mut h = vec![0.0f32; self.cell.hidden_dim()];
        let mut caches = Vec::with_capacity(sequence.len());
        for x in sequence {
            let (pre, h_new) = self.cell.step(x, &h);
            caches.push((pre, h_new.clone()));
            h = h_new;
        }
        (caches, h)
    }

    /// Raw logits for a sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or items have the wrong width.
    pub fn predict(&mut self, sequence: &[Vec<f32>]) -> Vec<f32> {
        let (_, h) = self.unroll(sequence);
        self.head.forward(&h)
    }

    /// Predicted class for a sequence.
    pub fn classify(&mut self, sequence: &[Vec<f32>]) -> usize {
        argmax(&self.predict(sequence))
    }

    /// One BPTT step on a labeled sequence; returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or the label is out of range.
    pub fn train_step(&mut self, sequence: &[Vec<f32>], label: usize, lr: f32) -> f32 {
        let (caches, h_final) = self.unroll(sequence);
        let logits = self.head.forward(&h_final);
        let (loss, dlogits) = softmax_cross_entropy(&logits, label);
        let mut dh = self.head.backward(&dlogits);
        self.head.update(&dlogits, &h_final, lr);

        // Backpropagate through time, accumulating weight gradients.
        let hidden = self.cell.hidden_dim();
        let mut gwx = Matrix::zeros(hidden, self.cell.in_dim + 1);
        let mut gwh = Matrix::zeros(hidden, hidden);
        for t in (0..sequence.len()).rev() {
            let (pre, _) = &caches[t];
            // dL/dpre_t = dh ∘ tanh'(pre_t).
            let dpre: Vec<f32> = dh
                .iter()
                .zip(pre)
                .map(|(g, &z)| {
                    let th = z.tanh();
                    g * (1.0 - th * th)
                })
                .collect();
            let mut xa = sequence[t].clone();
            xa.push(1.0);
            gwx.rank1_update(&dpre, &xa, 1.0);
            let h_prev: Vec<f32> = if t == 0 { vec![0.0; hidden] } else { caches[t - 1].1.clone() };
            gwh.rank1_update(&dpre, &h_prev, 1.0);
            // dL/dh_{t−1} = Whᵀ · dpre.
            dh = self.cell.wh.matvec_t(&dpre);
        }
        // Clip and apply.
        for g in [&mut gwx, &mut gwh] {
            let norm = g.frobenius_norm() as f32;
            if norm > self.grad_clip {
                let s = self.grad_clip / norm;
                g.map_inplace(|v| v * s);
            }
        }
        self.cell.wx.axpy(-lr, &gwx);
        self.cell.wh.axpy(-lr, &gwh);
        loss
    }

    /// Trains on labeled sequences for `epochs` passes; returns per-epoch
    /// mean loss.
    pub fn train(
        &mut self,
        data: &[(Vec<Vec<f32>>, usize)],
        epochs: usize,
        lr: f32,
        rng: &mut Rng64,
    ) -> Vec<f64> {
        assert!(!data.is_empty(), "empty training set");
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            for &i in &order {
                total += self.train_step(&data[i].0, data[i].1, lr) as f64;
            }
            history.push(total / data.len() as f64);
        }
        history
    }

    /// Accuracy over labeled sequences.
    pub fn evaluate(&mut self, data: &[(Vec<Vec<f32>>, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(s, l)| self.classify(s) == *l).count();
        correct as f64 / data.len() as f64
    }
}

/// Generates a synthetic sequence-classification task: each class is a
/// prototype waveform over `steps` timesteps; samples add Gaussian noise.
/// The class is only decodable by integrating over time — a genuinely
/// temporal task.
pub fn waveform_task(
    classes: usize,
    steps: usize,
    dim: usize,
    samples_per_class: usize,
    noise: f64,
    rng: &mut Rng64,
) -> Vec<(Vec<Vec<f32>>, usize)> {
    assert!(classes > 0 && steps > 0 && dim > 0, "degenerate task");
    // Per-class phase/frequency parameters.
    let protos: Vec<(f64, f64)> = (0..classes)
        .map(|_| (rng.range(0.5, 2.5), rng.range(0.0, std::f64::consts::TAU)))
        .collect();
    let mut data = Vec::with_capacity(classes * samples_per_class);
    for (c, &(freq, phase)) in protos.iter().enumerate() {
        for _ in 0..samples_per_class {
            let seq: Vec<Vec<f32>> = (0..steps)
                .map(|t| {
                    (0..dim)
                        .map(|d| {
                            let base = (freq * t as f64 / steps as f64 * std::f64::consts::TAU
                                + phase
                                + d as f64)
                                .sin();
                            (base + noise * rng.normal()) as f32
                        })
                        .collect()
                })
                .collect();
            data.push((seq, c));
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let mut rng = Rng64::new(1);
        let mut net = RnnClassifier::new(3, 6, 4, &mut rng);
        let seq = vec![vec![0.5f32, -0.5, 0.1]; 7];
        let a = net.predict(&seq);
        let b = net.predict(&seq);
        assert_eq!(a.len(), 4);
        assert_eq!(a, b, "prediction must be deterministic");
    }

    #[test]
    fn hidden_state_carries_information() {
        // Same final input, different prefixes → different logits.
        let mut rng = Rng64::new(2);
        let mut net = RnnClassifier::new(2, 8, 2, &mut rng);
        let last = vec![0.3f32, -0.3];
        let seq_a = vec![vec![1.0, 0.0], last.clone()];
        let seq_b = vec![vec![-1.0, 0.0], last.clone()];
        assert_ne!(net.predict(&seq_a), net.predict(&seq_b));
    }

    #[test]
    fn bptt_head_gradient_matches_finite_difference() {
        // Check dL/dWh numerically at a single entry.
        let mut rng = Rng64::new(3);
        let mut net = RnnClassifier::new(2, 4, 2, &mut rng);
        net.grad_clip = f32::INFINITY;
        let seq = vec![vec![0.4f32, -0.2], vec![0.1, 0.7], vec![-0.5, 0.2]];
        let label = 1;
        // Analytic gradient via one train step with tiny lr on a clone.
        let before = net.cell.wh.clone();
        let mut probe = net.clone();
        let lr = 1e-3f32;
        probe.train_step(&seq, label, lr);
        let analytic = (before.at(1, 2) - probe.cell.wh.at(1, 2)) / lr;
        // Numeric: perturb Wh[1][2].
        let eps = 1e-3f32;
        let loss_at = |net: &mut RnnClassifier, delta: f32| {
            net.cell.wh.set(1, 2, before.at(1, 2) + delta);
            let (_, h) = net.unroll(&seq);
            let logits = net.head.forward(&h);
            net.cell.wh.set(1, 2, before.at(1, 2));
            softmax_cross_entropy(&logits, label).0
        };
        let numeric = (loss_at(&mut net, eps) - loss_at(&mut net, -eps)) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 0.05, "analytic {analytic} vs numeric {numeric}");
    }

    #[test]
    fn learns_waveform_classification() {
        let mut rng = Rng64::new(4);
        // One generator call keeps the class prototypes shared; split each
        // class block into train/test samples.
        let all = waveform_task(3, 12, 2, 40, 0.3, &mut Rng64::new(100));
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, sample) in all.into_iter().enumerate() {
            if i % 40 < 30 {
                train.push(sample);
            } else {
                test.push(sample);
            }
        }
        let mut net = RnnClassifier::new(2, 16, 3, &mut rng);
        let hist = net.train(&train, 10, 0.02, &mut rng);
        assert!(hist.last().expect("epochs") < &hist[0], "loss did not fall: {hist:?}");
        let acc = net.evaluate(&test);
        assert!(acc > 0.7, "RNN accuracy {acc} (chance 0.33)");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = Rng64::new(5);
        RnnClassifier::new(2, 4, 2, &mut rng).predict(&[]);
    }

    #[test]
    fn waveform_task_shapes() {
        let mut rng = Rng64::new(6);
        let data = waveform_task(4, 9, 3, 5, 0.1, &mut rng);
        assert_eq!(data.len(), 20);
        for (seq, label) in &data {
            assert_eq!(seq.len(), 9);
            assert_eq!(seq[0].len(), 3);
            assert!(*label < 4);
        }
    }
}
