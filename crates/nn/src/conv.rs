//! Minimal 2-D convolutional networks.
//!
//! The paper's MANN studies build their feature embeddings with small
//! CNNs (ref. \[48\] uses "a 4-layer convolutional NN and 2-layer fully
//! connected network"), and CNNs are the canonical dense workload of
//! Sec. II. This module provides a compact, dependency-free CNN: `valid`
//! 2-D convolutions via im2col (so the heavy lifting reuses the same
//! [`Matrix`] kernels the analog tiles accelerate), max pooling, and a
//! dense head, trained with the same per-sample SGD as [`crate::mlp`].

use crate::backend::{DigitalLinear, LinearBackend};
use crate::data::Dataset;
use crate::loss::softmax_cross_entropy;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;
use enw_numerics::vector::argmax;

/// Shape of a feature map: channels × height × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapShape {
    /// Channel count.
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl MapShape {
    /// Total element count.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Returns `true` for a degenerate (empty) shape.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A `valid`-padding, stride-1 convolution layer with ReLU.
///
/// Implemented as im2col followed by a dense product, so a crossbar
/// accelerating dense products accelerates this layer too — the paper's
/// point that "matrix multiplication ... is the main building block of
/// generalized matrix multiplication and convolution computations".
#[derive(Debug, Clone)]
struct ConvLayer {
    in_shape: MapShape,
    out_shape: MapShape,
    kernel: usize,
    /// `out_channels × (in_channels·k² + 1)` (bias column).
    weights: Matrix,
    cached_patches: Matrix, // n_positions × (in_channels·k² + 1)
    cached_pre: Vec<f32>,   // out_channels × positions (pre-ReLU)
}

impl ConvLayer {
    fn new(in_shape: MapShape, out_channels: usize, kernel: usize, rng: &mut Rng64) -> Self {
        assert!(kernel <= in_shape.height && kernel <= in_shape.width, "kernel exceeds input");
        let out_shape = MapShape {
            channels: out_channels,
            height: in_shape.height - kernel + 1,
            width: in_shape.width - kernel + 1,
        };
        let fan_in = in_shape.channels * kernel * kernel;
        let limit = (6.0 / (fan_in + out_channels) as f64).sqrt();
        let mut weights = Matrix::random_uniform(out_channels, fan_in + 1, -limit, limit, rng);
        for r in 0..out_channels {
            weights.set(r, fan_in, 0.0);
        }
        ConvLayer {
            in_shape,
            out_shape,
            kernel,
            weights,
            cached_patches: Matrix::zeros(1, 1),
            cached_pre: Vec::new(),
        }
    }

    fn positions(&self) -> usize {
        self.out_shape.height * self.out_shape.width
    }

    /// im2col: one row per output position, columns are the receptive
    /// field plus a trailing 1 for the bias.
    fn im2col(&self, input: &[f32]) -> Matrix {
        let s = self.in_shape;
        assert_eq!(input.len(), s.len(), "input shape mismatch");
        let k = self.kernel;
        let cols = s.channels * k * k + 1;
        let mut patches = Matrix::zeros(self.positions(), cols);
        let mut row = 0;
        for oy in 0..self.out_shape.height {
            for ox in 0..self.out_shape.width {
                let dst = patches.row_mut(row);
                let mut c = 0;
                for ch in 0..s.channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            dst[c] =
                                input[ch * s.height * s.width + (oy + ky) * s.width + (ox + kx)];
                            c += 1;
                        }
                    }
                }
                dst[c] = 1.0;
                row += 1;
            }
        }
        patches
    }

    /// Forward with caching; output layout `channel-major` like the input.
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        self.cached_patches = self.im2col(input);
        let positions = self.positions();
        let mut pre = vec![0.0f32; self.out_shape.channels * positions];
        for p in 0..positions {
            let patch = self.cached_patches.row(p);
            for oc in 0..self.out_shape.channels {
                let w = self.weights.row(oc);
                let mut acc = 0.0f32;
                for (wi, xi) in w.iter().zip(patch) {
                    acc += wi * xi;
                }
                pre[oc * positions + p] = acc;
            }
        }
        self.cached_pre = pre.clone();
        for v in &mut pre {
            *v = v.max(0.0); // ReLU
        }
        pre
    }

    /// Backward + SGD update; `upstream` is `dL/d(post-ReLU output)`.
    /// Returns `dL/d(input)`.
    fn backward_update(&mut self, upstream: &[f32], lr: f32) -> Vec<f32> {
        let positions = self.positions();
        assert_eq!(upstream.len(), self.out_shape.channels * positions, "gradient shape mismatch");
        // ReLU mask.
        let delta: Vec<f32> = upstream
            .iter()
            .zip(&self.cached_pre)
            .map(|(g, &z)| if z > 0.0 { *g } else { 0.0 })
            .collect();
        // dL/dinput: scatter each position's (Wᵀ · delta_p) back to its
        // receptive field.
        let s = self.in_shape;
        let k = self.kernel;
        let mut dinput = vec![0.0f32; s.len()];
        let fan_in = s.channels * k * k;
        let mut row = 0;
        for oy in 0..self.out_shape.height {
            for ox in 0..self.out_shape.width {
                for oc in 0..self.out_shape.channels {
                    let d = delta[oc * positions + row];
                    if d == 0.0 {
                        continue;
                    }
                    let w = self.weights.row(oc);
                    let mut c = 0;
                    for ch in 0..s.channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                dinput
                                    [ch * s.height * s.width + (oy + ky) * s.width + (ox + kx)] +=
                                    d * w[c];
                                c += 1;
                            }
                        }
                    }
                }
                row += 1;
            }
        }
        // dL/dW = Σ_p delta_p · patch_pᵀ, applied as SGD descent.
        for oc in 0..self.out_shape.channels {
            let mut grad = vec![0.0f32; fan_in + 1];
            for p in 0..positions {
                let d = delta[oc * positions + p];
                if d == 0.0 {
                    continue;
                }
                let patch = self.cached_patches.row(p);
                for (g, x) in grad.iter_mut().zip(patch) {
                    *g += d * x;
                }
            }
            let wrow = self.weights.row_mut(oc);
            for (w, g) in wrow.iter_mut().zip(&grad) {
                *w -= lr * g;
            }
        }
        dinput
    }
}

/// 2×2 max pooling (stride 2, truncating odd edges) with index caching
/// for backprop.
#[derive(Debug, Clone)]
struct MaxPool {
    in_shape: MapShape,
    out_shape: MapShape,
    cached_argmax: Vec<usize>,
}

impl MaxPool {
    fn new(in_shape: MapShape) -> Self {
        let out_shape = MapShape {
            channels: in_shape.channels,
            height: in_shape.height / 2,
            width: in_shape.width / 2,
        };
        assert!(!out_shape.is_empty(), "input too small to pool");
        MaxPool { in_shape, out_shape, cached_argmax: Vec::new() }
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let s = self.in_shape;
        let o = self.out_shape;
        let mut out = vec![0.0f32; o.len()];
        self.cached_argmax = vec![0; o.len()];
        for ch in 0..o.channels {
            for oy in 0..o.height {
                for ox in 0..o.width {
                    let mut best_val = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx =
                                ch * s.height * s.width + (2 * oy + dy) * s.width + (2 * ox + dx);
                            if input[idx] > best_val {
                                best_val = input[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ch * o.height * o.width + oy * o.width + ox;
                    out[oidx] = best_val;
                    self.cached_argmax[oidx] = best_idx;
                }
            }
        }
        out
    }

    fn backward(&self, upstream: &[f32]) -> Vec<f32> {
        let mut dinput = vec![0.0f32; self.in_shape.len()];
        for (o, &g) in upstream.iter().enumerate() {
            dinput[self.cached_argmax[o]] += g;
        }
        dinput
    }
}

/// Architecture of a [`ConvNet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvNetConfig {
    /// Input feature-map shape.
    pub input: MapShape,
    /// Output channels of each conv stage (each stage = conv3×3 + ReLU,
    /// followed by 2×2 max-pool when the map is still large enough).
    pub conv_channels: Vec<usize>,
    /// Width of the dense embedding layer after flattening.
    pub embed_dim: usize,
    /// Class count of the softmax head.
    pub classes: usize,
}

/// A small CNN classifier: conv stages → dense embedding (tanh) → logits.
///
/// # Example
///
/// ```
/// use enw_nn::conv::{ConvNet, ConvNetConfig, MapShape};
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let cfg = ConvNetConfig {
///     input: MapShape { channels: 1, height: 8, width: 8 },
///     conv_channels: vec![4],
///     embed_dim: 16,
///     classes: 3,
/// };
/// let mut net = ConvNet::new(&cfg, &mut rng);
/// let logits = net.predict(&[0.0; 64]);
/// assert_eq!(logits.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ConvNet {
    convs: Vec<ConvLayer>,
    pools: Vec<Option<MaxPool>>,
    embed: DigitalLinear,
    head: DigitalLinear,
    embed_pre: Vec<f32>,
    flat: Vec<f32>,
    embedded: Vec<f32>,
}

impl ConvNet {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if the conv stack shrinks the map to nothing or any
    /// dimension is zero.
    pub fn new(cfg: &ConvNetConfig, rng: &mut Rng64) -> Self {
        assert!(cfg.classes > 0 && cfg.embed_dim > 0, "degenerate head");
        let mut shape = cfg.input;
        let mut convs = Vec::new();
        let mut pools = Vec::new();
        for &oc in &cfg.conv_channels {
            let conv = ConvLayer::new(shape, oc, 3, rng);
            shape = conv.out_shape;
            convs.push(conv);
            if shape.height >= 4 && shape.width >= 4 {
                let pool = MaxPool::new(shape);
                shape = pool.out_shape;
                pools.push(Some(pool));
            } else {
                pools.push(None);
            }
        }
        assert!(!shape.is_empty(), "conv stack consumed the whole input");
        let embed = DigitalLinear::new(shape.len(), cfg.embed_dim, rng);
        let head = DigitalLinear::new(cfg.embed_dim, cfg.classes, rng);
        ConvNet {
            convs,
            pools,
            embed,
            head,
            embed_pre: Vec::new(),
            flat: Vec::new(),
            embedded: Vec::new(),
        }
    }

    /// Embedding dimensionality.
    pub fn embed_dim(&self) -> usize {
        self.embed.out_dim()
    }

    fn forward_features(&mut self, input: &[f32]) -> Vec<f32> {
        let mut a = input.to_vec();
        for (conv, pool) in self.convs.iter_mut().zip(&mut self.pools) {
            a = conv.forward(&a);
            if let Some(p) = pool {
                a = p.forward(&a);
            }
        }
        a
    }

    /// Penultimate (embedding) activations — the feature vector the MANN
    /// memory stores.
    pub fn embed(&mut self, input: &[f32]) -> Vec<f32> {
        let flat = self.forward_features(input);
        let mut e = self.embed.forward(&flat);
        for v in &mut e {
            *v = v.tanh();
        }
        e
    }

    /// Raw logits for one input.
    pub fn predict(&mut self, input: &[f32]) -> Vec<f32> {
        let e = self.embed(input);
        self.head.forward(&e)
    }

    /// Predicted class.
    pub fn classify(&mut self, input: &[f32]) -> usize {
        argmax(&self.predict(input))
    }

    /// One SGD step; returns the sample loss.
    pub fn train_step(&mut self, input: &[f32], label: usize, lr: f32) -> f32 {
        // Forward with caching.
        self.flat = self.forward_features(input);
        self.embed_pre = self.embed.forward(&self.flat);
        self.embedded = self.embed_pre.iter().map(|z| z.tanh()).collect();
        let logits = self.head.forward(&self.embedded);
        let (loss, dlogits) = softmax_cross_entropy(&logits, label);
        // Head.
        let dembedded = self.head.backward(&dlogits);
        self.head.update(&dlogits, &self.embedded, lr);
        // Embedding layer (tanh).
        let dpre: Vec<f32> = dembedded
            .iter()
            .zip(&self.embed_pre)
            .map(|(g, &z)| {
                let t = z.tanh();
                g * (1.0 - t * t)
            })
            .collect();
        let mut dflat = self.embed.backward(&dpre);
        self.embed.update(&dpre, &self.flat, lr);
        // Conv stack in reverse.
        for (conv, pool) in self.convs.iter_mut().zip(&mut self.pools).rev() {
            if let Some(p) = pool {
                dflat = p.backward(&dflat);
            }
            dflat = conv.backward_update(&dflat, lr);
        }
        loss
    }

    /// Trains on a dataset with per-sample SGD; returns per-epoch mean
    /// loss.
    pub fn train(&mut self, data: &Dataset, epochs: usize, lr: f32, rng: &mut Rng64) -> Vec<f64> {
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            for &i in &order {
                total += self.train_step(data.input(i), data.label(i), lr) as f64;
            }
            history.push(total / data.len() as f64);
        }
        history
    }

    /// Classification accuracy over a dataset.
    pub fn evaluate(&mut self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct =
            (0..data.len()).filter(|&i| self.classify(data.input(i)) == data.label(i)).count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticImages;

    fn cfg(classes: usize) -> ConvNetConfig {
        ConvNetConfig {
            input: MapShape { channels: 1, height: 8, width: 8 },
            conv_channels: vec![6],
            embed_dim: 24,
            classes,
        }
    }

    #[test]
    fn shapes_flow_through() {
        let mut rng = Rng64::new(1);
        let mut net = ConvNet::new(&cfg(4), &mut rng);
        assert_eq!(net.predict(&[0.1; 64]).len(), 4);
        assert_eq!(net.embed(&[0.1; 64]).len(), 24);
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        let mut rng = Rng64::new(2);
        let shape = MapShape { channels: 1, height: 3, width: 3 };
        let conv = ConvLayer::new(shape, 1, 3, &mut rng);
        let input: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let patches = conv.im2col(&input);
        assert_eq!(patches.rows(), 1); // single 3x3 position
        assert_eq!(&patches.row(0)[..9], &input[..]);
        assert_eq!(patches.row(0)[9], 1.0); // bias
    }

    #[test]
    fn pooling_keeps_maxima() {
        let shape = MapShape { channels: 1, height: 4, width: 4 };
        let mut pool = MaxPool::new(shape);
        let mut input = vec![0.0f32; 16];
        input[5] = 3.0; // window (1,1) of the top-left 2x2 block? position (1,1)
        input[10] = 7.0;
        let out = pool.forward(&input);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], 3.0);
        assert_eq!(out[3], 7.0);
    }

    #[test]
    fn pool_backward_routes_to_argmax() {
        let shape = MapShape { channels: 1, height: 2, width: 2 };
        let mut pool = MaxPool::new(shape);
        let input = [1.0f32, 5.0, 2.0, 3.0];
        pool.forward(&input);
        let d = pool.backward(&[1.0]);
        assert_eq!(d, vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        // Check dL/dinput of a conv layer against finite differences of
        // L = sum(relu(conv(x))).
        let mut rng = Rng64::new(3);
        let shape = MapShape { channels: 1, height: 4, width: 4 };
        let mut conv = ConvLayer::new(shape, 2, 3, &mut rng);
        let input: Vec<f32> = (0..16).map(|i| (i as f32 / 8.0) - 1.0).collect();
        let out = conv.forward(&input);
        let upstream = vec![1.0f32; out.len()];
        // lr = 0 isolates the input gradient from the weight update.
        let dinput = conv.backward_update(&upstream, 0.0);
        let eps = 1e-3f32;
        for i in [0usize, 5, 10, 15] {
            let mut xp = input.clone();
            xp[i] += eps;
            let mut xm = input.clone();
            xm[i] -= eps;
            let lp: f32 = conv.forward(&xp).iter().sum();
            let lm: f32 = conv.forward(&xm).iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dinput[i]).abs() < 0.05, "pixel {i}: {num} vs {}", dinput[i]);
        }
    }

    #[test]
    fn learns_a_small_image_task() {
        let mut rng = Rng64::new(4);
        let split = SyntheticImages::builder()
            .classes(3)
            .dim(64)
            .train_per_class(40)
            .test_per_class(15)
            .noise(0.4)
            .build(&mut rng);
        let mut net = ConvNet::new(&cfg(3), &mut rng);
        let hist = net.train(&split.train, 6, 0.03, &mut rng);
        assert!(hist.last().expect("epochs") < &hist[0], "loss did not fall: {hist:?}");
        let acc = net.evaluate(&split.test);
        assert!(acc > 0.7, "conv accuracy {acc}");
    }

    #[test]
    fn deeper_stack_constructs() {
        let mut rng = Rng64::new(5);
        let cfg = ConvNetConfig {
            input: MapShape { channels: 1, height: 12, width: 12 },
            conv_channels: vec![4, 8],
            embed_dim: 16,
            classes: 2,
        };
        let mut net = ConvNet::new(&cfg, &mut rng);
        assert_eq!(net.predict(&vec![0.0; 144]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "kernel exceeds input")]
    fn oversized_kernel_panics() {
        let mut rng = Rng64::new(6);
        let cfg = ConvNetConfig {
            input: MapShape { channels: 1, height: 2, width: 2 },
            conv_channels: vec![4],
            embed_dim: 8,
            classes: 2,
        };
        ConvNet::new(&cfg, &mut rng);
    }
}
