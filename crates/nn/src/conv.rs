//! Minimal 2-D convolutional networks, generic over the weight backend.
//!
//! The paper's MANN studies build their feature embeddings with small
//! CNNs (ref. \[48\] uses "a 4-layer convolutional NN and 2-layer fully
//! connected network"), and CNNs are the canonical dense workload of
//! Sec. II. This module provides a compact, dependency-free CNN: `valid`
//! 2-D convolutions lowered to im2col patch extraction, max pooling, and
//! a dense head, trained with the same per-sample SGD as [`crate::mlp`].
//!
//! Two properties matter for the analog-training experiments:
//!
//! * **Backend-generic.** Every weight array — each conv kernel bank,
//!   the embedding layer, the head — is a [`LinearBackend`]. A conv
//!   layer's forward pass is one backend matrix–vector cycle per output
//!   position over its im2col patch, its backward pass one transposed
//!   cycle per active position, and its weight update a stream of
//!   rank-1 cycles — exactly the three crossbar cycles of paper
//!   Sec. II-A. [`ConvNet::new`] builds the floating-point reference;
//!   [`ConvNet::with_backends`] drops in analog (tiled) crossbars
//!   without touching the model code.
//! * **Zero-alloc steady state.** All im2col patches, activations, and
//!   gradient staging live in buffers sized at construction, and the
//!   `_into` entry points ([`ConvNet::embed_into`],
//!   [`ConvNet::predict_into`], [`ConvNet::train_step`]) reuse them, so
//!   a steady-state training or inference loop performs no heap
//!   allocation (the property E21's counting-allocator gate enforces).

use crate::backend::{DigitalLinear, LinearBackend};
use crate::data::Dataset;
use crate::loss::softmax_cross_entropy_into;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;
use enw_numerics::vector::argmax;

/// Shape of a feature map: channels × height × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapShape {
    /// Channel count.
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl MapShape {
    /// Total element count.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Returns `true` for a degenerate (empty) shape.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A `valid`-padding, stride-1 convolution layer with ReLU.
///
/// Implemented as im2col followed by per-position backend cycles, so a
/// crossbar accelerating dense products accelerates this layer too —
/// the paper's point that "matrix multiplication ... is the main
/// building block of generalized matrix multiplication and convolution
/// computations". The backend stores `out_channels × (in_channels·k² + 1)`
/// weights (its own bias column); patches carry no bias element.
#[derive(Debug, Clone)]
struct ConvLayer<B> {
    in_shape: MapShape,
    out_shape: MapShape,
    kernel: usize,
    backend: B,
    /// im2col staging: `n_positions × in_channels·k²`, refilled each
    /// forward pass and re-read by the update stream.
    patches: Matrix,
    /// Pre-ReLU activations, `out_channels × positions`.
    pre: Vec<f32>,
    /// ReLU-masked upstream gradient, `out_channels × positions`.
    delta: Vec<f32>,
    /// Per-position gradient gather, `out_channels`.
    dpos: Vec<f32>,
    /// Per-position forward scatter, `out_channels`.
    pos_out: Vec<f32>,
    /// Per-position input-gradient staging, `in_channels·k²`.
    dpatch: Vec<f32>,
}

impl<B: LinearBackend> ConvLayer<B> {
    fn new(in_shape: MapShape, out_channels: usize, kernel: usize, backend: B) -> Self {
        assert!(kernel <= in_shape.height && kernel <= in_shape.width, "kernel exceeds input");
        let out_shape = MapShape {
            channels: out_channels,
            height: in_shape.height - kernel + 1,
            width: in_shape.width - kernel + 1,
        };
        let fan_in = in_shape.channels * kernel * kernel;
        assert_eq!(backend.in_dim(), fan_in, "backend input dim mismatch");
        assert_eq!(backend.out_dim(), out_channels, "backend output dim mismatch");
        let positions = out_shape.height * out_shape.width;
        ConvLayer {
            in_shape,
            out_shape,
            kernel,
            backend,
            patches: Matrix::zeros(positions, fan_in),
            pre: vec![0.0; out_channels * positions],
            delta: vec![0.0; out_channels * positions],
            dpos: vec![0.0; out_channels],
            pos_out: vec![0.0; out_channels],
            dpatch: vec![0.0; fan_in],
        }
    }

    fn positions(&self) -> usize {
        self.out_shape.height * self.out_shape.width
    }

    /// im2col into the persistent patch buffer: one row per output
    /// position, columns are the receptive field (no bias element — the
    /// backend drives its own bias line).
    fn fill_patches(&mut self, input: &[f32]) {
        let s = self.in_shape;
        assert_eq!(input.len(), s.len(), "input shape mismatch");
        let k = self.kernel;
        let mut row = 0;
        for oy in 0..self.out_shape.height {
            for ox in 0..self.out_shape.width {
                let dst = self.patches.row_mut(row);
                let mut c = 0;
                for ch in 0..s.channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            dst[c] =
                                input[ch * s.height * s.width + (oy + ky) * s.width + (ox + kx)];
                            c += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }

    /// Forward with caching; output layout `channel-major` like the
    /// input (`out` is fully overwritten with post-ReLU activations).
    // enw:hot
    fn forward_into(&mut self, input: &[f32], out: &mut [f32]) {
        self.fill_patches(input);
        let positions = self.positions();
        let ocn = self.out_shape.channels;
        assert_eq!(out.len(), ocn * positions, "output shape mismatch");
        let ConvLayer { backend, patches, pre, pos_out, .. } = self;
        for p in 0..positions {
            backend.forward_into(patches.row(p), pos_out);
            for (oc, v) in pos_out.iter().enumerate() {
                pre[oc * positions + p] = *v;
            }
        }
        for (o, z) in out.iter_mut().zip(pre.iter()) {
            *o = z.max(0.0); // ReLU
        }
    }

    /// Backward + SGD update; `upstream` is `dL/d(post-ReLU output)` and
    /// `dinput` is fully overwritten with `dL/d(input)`.
    ///
    /// Two streaming passes over the cached patches: first every active
    /// position's transposed read is scattered back to its receptive
    /// field (using pre-update weights, like the monolithic form), then
    /// every active position applies its rank-1 update. Positions whose
    /// masked gradient is entirely zero are skipped in both passes —
    /// no crossbar cycle, no entropy drawn.
    fn backward_update_into(&mut self, upstream: &[f32], lr: f32, dinput: &mut [f32]) {
        let positions = self.positions();
        let ocn = self.out_shape.channels;
        assert_eq!(upstream.len(), ocn * positions, "gradient shape mismatch");
        let s = self.in_shape;
        assert_eq!(dinput.len(), s.len(), "input gradient shape mismatch");
        let k = self.kernel;
        let (oh, ow) = (self.out_shape.height, self.out_shape.width);
        let ConvLayer { backend, patches, pre, delta, dpos, dpatch, .. } = self;
        // ReLU mask.
        for ((d, g), z) in delta.iter_mut().zip(upstream).zip(pre.iter()) {
            *d = if *z > 0.0 { *g } else { 0.0 };
        }
        // Pass 1 — dL/dinput: scatter each position's transposed read
        // back to its receptive field.
        dinput.fill(0.0);
        let mut row = 0;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut active = false;
                for (oc, d) in dpos.iter_mut().enumerate() {
                    *d = delta[oc * positions + row];
                    active |= *d != 0.0;
                }
                if active {
                    backend.backward_into(dpos, dpatch);
                    let mut c = 0;
                    for ch in 0..s.channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                dinput
                                    [ch * s.height * s.width + (oy + ky) * s.width + (ox + kx)] +=
                                    dpatch[c];
                                c += 1;
                            }
                        }
                    }
                }
                row += 1;
            }
        }
        // Pass 2 — dL/dW as a stream of per-position rank-1 cycles (for
        // a digital backend this sums to exactly the batched gradient;
        // an analog backend realizes each as a stochastic pulse update).
        for p in 0..positions {
            let mut active = false;
            for (oc, d) in dpos.iter_mut().enumerate() {
                *d = delta[oc * positions + p];
                active |= *d != 0.0;
            }
            if active {
                backend.update(dpos, patches.row(p), lr);
            }
        }
    }
}

/// 2×2 max pooling (stride 2, truncating odd edges) with index caching
/// for backprop.
#[derive(Debug, Clone)]
struct MaxPool {
    in_shape: MapShape,
    out_shape: MapShape,
    cached_argmax: Vec<usize>,
}

impl MaxPool {
    fn new(in_shape: MapShape) -> Self {
        let out_shape = MapShape {
            channels: in_shape.channels,
            height: in_shape.height / 2,
            width: in_shape.width / 2,
        };
        assert!(!out_shape.is_empty(), "input too small to pool");
        MaxPool { in_shape, out_shape, cached_argmax: vec![0; out_shape.len()] }
    }

    // enw:hot
    fn forward_into(&mut self, input: &[f32], out: &mut [f32]) {
        let s = self.in_shape;
        let o = self.out_shape;
        assert_eq!(out.len(), o.len(), "pool output shape mismatch");
        for ch in 0..o.channels {
            for oy in 0..o.height {
                for ox in 0..o.width {
                    let mut best_val = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx =
                                ch * s.height * s.width + (2 * oy + dy) * s.width + (2 * ox + dx);
                            if input[idx] > best_val {
                                best_val = input[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ch * o.height * o.width + oy * o.width + ox;
                    out[oidx] = best_val;
                    self.cached_argmax[oidx] = best_idx;
                }
            }
        }
    }

    fn backward_into(&self, upstream: &[f32], dinput: &mut [f32]) {
        assert_eq!(dinput.len(), self.in_shape.len(), "pool gradient shape mismatch");
        dinput.fill(0.0);
        for (o, &g) in upstream.iter().enumerate() {
            dinput[self.cached_argmax[o]] += g;
        }
    }
}

/// One conv stage (conv + ReLU, optional 2×2 pool) with its persistent
/// activation and gradient buffers.
#[derive(Debug, Clone)]
struct ConvStage<B> {
    conv: ConvLayer<B>,
    pool: Option<MaxPool>,
    /// Post-ReLU conv output.
    conv_out: Vec<f32>,
    /// Post-pool output (empty when the stage has no pool).
    pool_out: Vec<f32>,
    /// Gradient wrt `conv_out` (empty when the stage has no pool).
    d_conv: Vec<f32>,
}

impl<B: LinearBackend> ConvStage<B> {
    /// The stage's output activations (post-pool when pooled).
    fn output(&self) -> &[f32] {
        if self.pool.is_some() {
            &self.pool_out
        } else {
            &self.conv_out
        }
    }

    // enw:hot
    fn run_forward(&mut self, input: &[f32]) {
        self.conv.forward_into(input, &mut self.conv_out);
        if let Some(p) = &mut self.pool {
            p.forward_into(&self.conv_out, &mut self.pool_out);
        }
    }

    /// `upstream` is the gradient wrt this stage's output; `dinput` is
    /// fully overwritten with the gradient wrt its input.
    fn backward_update(&mut self, upstream: &[f32], lr: f32, dinput: &mut [f32]) {
        if let Some(p) = &self.pool {
            p.backward_into(upstream, &mut self.d_conv);
            self.conv.backward_update_into(&self.d_conv, lr, dinput);
        } else {
            self.conv.backward_update_into(upstream, lr, dinput);
        }
    }
}

/// Architecture of a [`ConvNet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvNetConfig {
    /// Input feature-map shape.
    pub input: MapShape,
    /// Output channels of each conv stage (each stage = conv3×3 + ReLU,
    /// followed by 2×2 max-pool when the map is still large enough).
    pub conv_channels: Vec<usize>,
    /// Width of the dense embedding layer after flattening.
    pub embed_dim: usize,
    /// Class count of the softmax head.
    pub classes: usize,
}

/// A small CNN classifier: conv stages → dense embedding (tanh) → logits,
/// with every weight array behind a [`LinearBackend`] `B`.
///
/// # Example
///
/// ```
/// use enw_nn::conv::{ConvNet, ConvNetConfig, MapShape};
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let cfg = ConvNetConfig {
///     input: MapShape { channels: 1, height: 8, width: 8 },
///     conv_channels: vec![4],
///     embed_dim: 16,
///     classes: 3,
/// };
/// let mut net = ConvNet::new(&cfg, &mut rng);
/// let logits = net.predict(&[0.0; 64]);
/// assert_eq!(logits.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ConvNet<B: LinearBackend = DigitalLinear> {
    stages: Vec<ConvStage<B>>,
    embed: B,
    head: B,
    embed_pre: Vec<f32>,
    embedded: Vec<f32>,
    logits: Vec<f32>,
    dlogits: Vec<f32>,
    dembedded: Vec<f32>,
    dpre: Vec<f32>,
    dflat: Vec<f32>,
    /// `dstage[i]` holds the gradient wrt stage `i`'s *input*.
    dstage: Vec<Vec<f32>>,
}

impl ConvNet<DigitalLinear> {
    /// Builds the floating-point reference network (Xavier-uniform
    /// weights, zero biases).
    ///
    /// # Panics
    ///
    /// Panics if the conv stack shrinks the map to nothing or any
    /// dimension is zero.
    pub fn new(cfg: &ConvNetConfig, rng: &mut Rng64) -> Self {
        ConvNet::with_backends(cfg, rng, DigitalLinear::new)
    }
}

impl<B: LinearBackend> ConvNet<B> {
    /// Builds the network with `make(in_dim, out_dim, rng)` supplying
    /// every weight backend, in a fixed order: one per conv stage
    /// (input dim `in_channels·9`), then the embedding layer, then the
    /// head. Analog experiments pass a closure constructing crossbar
    /// tiles; the deterministic call order makes the whole network a
    /// pure function of its configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the conv stack shrinks the map to nothing, any
    /// dimension is zero, or a supplied backend has the wrong shape.
    pub fn with_backends(
        cfg: &ConvNetConfig,
        rng: &mut Rng64,
        mut make: impl FnMut(usize, usize, &mut Rng64) -> B,
    ) -> Self {
        let built = ConvNet::try_with_backends(cfg, rng, |in_dim, out_dim, rng| {
            Ok::<B, std::convert::Infallible>(make(in_dim, out_dim, rng))
        });
        match built {
            Ok(net) => net,
            Err(e) => match e {},
        }
    }

    /// Fallible form of [`with_backends`](ConvNet::with_backends): the
    /// factory may refuse a layer shape (e.g. an analog tiling that does
    /// not fit), and the first error aborts construction.
    ///
    /// # Errors
    ///
    /// Propagates the first error `make` returns.
    ///
    /// # Panics
    ///
    /// Panics if the conv stack shrinks the map to nothing, any
    /// dimension is zero, or a supplied backend has the wrong shape.
    pub fn try_with_backends<E>(
        cfg: &ConvNetConfig,
        rng: &mut Rng64,
        mut make: impl FnMut(usize, usize, &mut Rng64) -> Result<B, E>,
    ) -> Result<Self, E> {
        assert!(cfg.classes > 0 && cfg.embed_dim > 0, "degenerate head");
        let mut shape = cfg.input;
        let mut stages = Vec::new();
        let mut dstage = Vec::new();
        for &oc in &cfg.conv_channels {
            let kernel = 3;
            assert!(kernel <= shape.height && kernel <= shape.width, "kernel exceeds input");
            dstage.push(vec![0.0; shape.len()]);
            let backend = make(shape.channels * kernel * kernel, oc, rng)?;
            let conv = ConvLayer::new(shape, oc, kernel, backend);
            shape = conv.out_shape;
            let conv_out_len = shape.len();
            let pool = if shape.height >= 4 && shape.width >= 4 {
                let pool = MaxPool::new(shape);
                shape = pool.out_shape;
                Some(pool)
            } else {
                None
            };
            stages.push(ConvStage {
                conv,
                conv_out: vec![0.0; conv_out_len],
                pool_out: if pool.is_some() { vec![0.0; shape.len()] } else { Vec::new() },
                d_conv: if pool.is_some() { vec![0.0; conv_out_len] } else { Vec::new() },
                pool,
            });
        }
        assert!(!shape.is_empty(), "conv stack consumed the whole input");
        let embed = make(shape.len(), cfg.embed_dim, rng)?;
        let head = make(cfg.embed_dim, cfg.classes, rng)?;
        Ok(ConvNet {
            stages,
            embed,
            head,
            embed_pre: vec![0.0; cfg.embed_dim],
            embedded: vec![0.0; cfg.embed_dim],
            logits: vec![0.0; cfg.classes],
            dlogits: vec![0.0; cfg.classes],
            dembedded: vec![0.0; cfg.embed_dim],
            dpre: vec![0.0; cfg.embed_dim],
            dflat: vec![0.0; shape.len()],
            dstage,
        })
    }

    /// Embedding dimensionality.
    pub fn embed_dim(&self) -> usize {
        self.embed.out_dim()
    }

    /// Class count of the softmax head.
    pub fn classes(&self) -> usize {
        self.head.out_dim()
    }

    /// Trainable layer count: conv stages + embedding + head.
    pub fn layer_count(&self) -> usize {
        self.stages.len() + 2
    }

    /// Every weight backend in construction order (conv stages, then
    /// embedding, then head) — the hook checkpointing uses to serialize
    /// analog tile state.
    pub fn backends(&self) -> impl Iterator<Item = &B> {
        self.stages.iter().map(|s| &s.conv.backend).chain([&self.embed, &self.head])
    }

    /// Mutable access to every weight backend, in the same order as
    /// [`backends`](ConvNet::backends) — the restore-side hook.
    pub fn backends_mut(&mut self) -> impl Iterator<Item = &mut B> {
        let ConvNet { stages, embed, head, .. } = self;
        stages.iter_mut().map(|s| &mut s.conv.backend).chain([embed, head])
    }

    // enw:hot
    fn forward_features(&mut self, input: &[f32]) {
        for i in 0..self.stages.len() {
            let (done, rest) = self.stages.split_at_mut(i);
            let Some(stage) = rest.first_mut() else { break };
            let x = done.last().map_or(input, |s| s.output());
            stage.run_forward(x);
        }
    }

    /// Penultimate (embedding) activations into a caller-owned buffer —
    /// the feature vector the MANN memory stores. `out` is fully
    /// overwritten.
    // enw:hot
    pub fn embed_into(&mut self, input: &[f32], out: &mut [f32]) {
        self.forward_features(input);
        let ConvNet { stages, embed, embed_pre, .. } = self;
        let flat = stages.last().map_or(input, |s| s.output());
        embed.forward_into(flat, embed_pre);
        for (o, z) in out.iter_mut().zip(embed_pre.iter()) {
            *o = z.tanh();
        }
    }

    /// Penultimate (embedding) activations, allocating the result.
    pub fn embed(&mut self, input: &[f32]) -> Vec<f32> {
        let mut e = vec![0.0f32; self.embed_dim()];
        self.embed_into(input, &mut e);
        e
    }

    /// Raw logits for one input into a caller-owned buffer (`out` is
    /// fully overwritten).
    // enw:hot
    pub fn predict_into(&mut self, input: &[f32], out: &mut [f32]) {
        self.forward_features(input);
        let ConvNet { stages, embed, head, embed_pre, embedded, .. } = self;
        let flat = stages.last().map_or(input, |s| s.output());
        embed.forward_into(flat, embed_pre);
        for (e, z) in embedded.iter_mut().zip(embed_pre.iter()) {
            *e = z.tanh();
        }
        head.forward_into(embedded, out);
    }

    /// Raw logits for one input, allocating the result.
    pub fn predict(&mut self, input: &[f32]) -> Vec<f32> {
        let mut logits = vec![0.0f32; self.classes()];
        self.predict_into(input, &mut logits);
        logits
    }

    /// Predicted class (allocation-free: reuses the internal logits
    /// buffer).
    pub fn classify(&mut self, input: &[f32]) -> usize {
        let mut logits = std::mem::take(&mut self.logits);
        self.predict_into(input, &mut logits);
        let class = argmax(&logits);
        self.logits = logits;
        class
    }

    /// One SGD step; returns the sample loss. Allocation-free in steady
    /// state: every intermediate lives in a buffer sized at
    /// construction.
    pub fn train_step(&mut self, input: &[f32], label: usize, lr: f32) -> f32 {
        // Forward with caching.
        self.forward_features(input);
        let ConvNet {
            stages,
            embed,
            head,
            embed_pre,
            embedded,
            logits,
            dlogits,
            dembedded,
            dpre,
            dflat,
            dstage,
        } = self;
        let flat = stages.last().map_or(input, |s| s.output());
        embed.forward_into(flat, embed_pre);
        for (e, z) in embedded.iter_mut().zip(embed_pre.iter()) {
            *e = z.tanh();
        }
        head.forward_into(embedded, logits);
        let loss = softmax_cross_entropy_into(logits, label, dlogits);
        // Head.
        head.backward_into(dlogits, dembedded);
        head.update(dlogits, embedded, lr);
        // Embedding layer (tanh; `embedded` already holds tanh(z)).
        for ((d, g), t) in dpre.iter_mut().zip(dembedded.iter()).zip(embedded.iter()) {
            *d = g * (1.0 - t * t);
        }
        embed.backward_into(dpre, dflat);
        embed.update(dpre, flat, lr);
        // Conv stack in reverse; dstage[i] receives the gradient wrt
        // stage i's input, which is stage i-1's upstream.
        let mut upstream: &[f32] = dflat;
        for (stage, dst) in stages.iter_mut().rev().zip(dstage.iter_mut().rev()) {
            stage.backward_update(upstream, lr, dst);
            upstream = dst;
        }
        loss
    }

    /// Trains on a dataset with per-sample SGD; returns per-epoch mean
    /// loss.
    pub fn train(&mut self, data: &Dataset, epochs: usize, lr: f32, rng: &mut Rng64) -> Vec<f64> {
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            for &i in &order {
                total += self.train_step(data.input(i), data.label(i), lr) as f64;
            }
            history.push(total / data.len() as f64);
        }
        history
    }

    /// Classification accuracy over a dataset.
    pub fn evaluate(&mut self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct =
            (0..data.len()).filter(|&i| self.classify(data.input(i)) == data.label(i)).count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticImages;

    fn cfg(classes: usize) -> ConvNetConfig {
        ConvNetConfig {
            input: MapShape { channels: 1, height: 8, width: 8 },
            conv_channels: vec![6],
            embed_dim: 24,
            classes,
        }
    }

    fn digital_conv(in_shape: MapShape, oc: usize, k: usize, seed: u64) -> ConvLayer<DigitalLinear> {
        let mut rng = Rng64::new(seed);
        let backend = DigitalLinear::new(in_shape.channels * k * k, oc, &mut rng);
        ConvLayer::new(in_shape, oc, k, backend)
    }

    #[test]
    fn shapes_flow_through() {
        let mut rng = Rng64::new(1);
        let mut net = ConvNet::new(&cfg(4), &mut rng);
        assert_eq!(net.predict(&[0.1; 64]).len(), 4);
        assert_eq!(net.embed(&[0.1; 64]).len(), 24);
        assert_eq!(net.layer_count(), 3);
        assert_eq!(net.backends_mut().count(), 3);
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        let shape = MapShape { channels: 1, height: 3, width: 3 };
        let mut conv = digital_conv(shape, 1, 3, 2);
        let input: Vec<f32> = (0..9).map(|i| i as f32).collect();
        conv.fill_patches(&input);
        assert_eq!(conv.patches.rows(), 1); // single 3x3 position
        assert_eq!(conv.patches.row(0), &input[..]); // no bias element
    }

    #[test]
    fn pooling_keeps_maxima() {
        let shape = MapShape { channels: 1, height: 4, width: 4 };
        let mut pool = MaxPool::new(shape);
        let mut input = vec![0.0f32; 16];
        input[5] = 3.0; // window (1,1) of the top-left 2x2 block? position (1,1)
        input[10] = 7.0;
        let mut out = vec![0.0f32; pool.out_shape.len()];
        pool.forward_into(&input, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], 3.0);
        assert_eq!(out[3], 7.0);
    }

    #[test]
    fn pool_backward_routes_to_argmax() {
        let shape = MapShape { channels: 1, height: 2, width: 2 };
        let mut pool = MaxPool::new(shape);
        let input = [1.0f32, 5.0, 2.0, 3.0];
        let mut out = vec![0.0f32; 1];
        pool.forward_into(&input, &mut out);
        let mut d = vec![0.0f32; 4];
        pool.backward_into(&[1.0], &mut d);
        assert_eq!(d, vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        // Check dL/dinput of a conv layer against finite differences of
        // L = sum(relu(conv(x))).
        let shape = MapShape { channels: 1, height: 4, width: 4 };
        let mut conv = digital_conv(shape, 2, 3, 3);
        let input: Vec<f32> = (0..16).map(|i| (i as f32 / 8.0) - 1.0).collect();
        let mut out = vec![0.0f32; conv.out_shape.len()];
        conv.forward_into(&input, &mut out);
        let upstream = vec![1.0f32; out.len()];
        // lr = 0 isolates the input gradient from the weight update.
        let mut dinput = vec![0.0f32; 16];
        conv.backward_update_into(&upstream, 0.0, &mut dinput);
        let eps = 1e-3f32;
        for i in [0usize, 5, 10, 15] {
            let mut xp = input.clone();
            xp[i] += eps;
            let mut xm = input.clone();
            xm[i] -= eps;
            conv.forward_into(&xp, &mut out);
            let lp: f32 = out.iter().sum();
            conv.forward_into(&xm, &mut out);
            let lm: f32 = out.iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dinput[i]).abs() < 0.05, "pixel {i}: {num} vs {}", dinput[i]);
        }
    }

    #[test]
    fn learns_a_small_image_task() {
        let mut rng = Rng64::new(4);
        let split = SyntheticImages::builder()
            .classes(3)
            .dim(64)
            .train_per_class(40)
            .test_per_class(15)
            .noise(0.4)
            .build(&mut rng);
        let mut net = ConvNet::new(&cfg(3), &mut rng);
        let hist = net.train(&split.train, 6, 0.03, &mut rng);
        assert!(hist.last().expect("epochs") < &hist[0], "loss did not fall: {hist:?}");
        let acc = net.evaluate(&split.test);
        assert!(acc > 0.7, "conv accuracy {acc}");
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let mut rng = Rng64::new(8);
        let mut net = ConvNet::new(&cfg(4), &mut rng);
        let input: Vec<f32> = (0..64).map(|i| ((i % 9) as f32 - 4.0) / 9.0).collect();
        let logits = net.predict(&input);
        let mut buf = vec![0.0f32; 4];
        net.predict_into(&input, &mut buf);
        assert_eq!(
            logits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let e = net.embed(&input);
        let mut ebuf = vec![0.0f32; 24];
        net.embed_into(&input, &mut ebuf);
        assert!(e.iter().zip(&ebuf).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(net.classify(&input), argmax(&logits));
    }

    #[test]
    fn deeper_stack_constructs() {
        let mut rng = Rng64::new(5);
        let cfg = ConvNetConfig {
            input: MapShape { channels: 1, height: 12, width: 12 },
            conv_channels: vec![4, 8],
            embed_dim: 16,
            classes: 2,
        };
        let mut net = ConvNet::new(&cfg, &mut rng);
        assert_eq!(net.predict(&vec![0.0; 144]).len(), 2);
        assert_eq!(net.layer_count(), 4);
    }

    #[test]
    #[should_panic(expected = "kernel exceeds input")]
    fn oversized_kernel_panics() {
        let mut rng = Rng64::new(6);
        let cfg = ConvNetConfig {
            input: MapShape { channels: 1, height: 2, width: 2 },
            conv_channels: vec![4],
            embed_dim: 8,
            classes: 2,
        };
        ConvNet::new(&cfg, &mut rng);
    }
}
