//! Classification metrics.

/// A confusion matrix over `n` classes.
///
/// # Example
///
/// ```
/// use enw_nn::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(1, 0); // a class-1 example misclassified as class 0
/// assert_eq!(cm.accuracy(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>, // row = true class, col = predicted
}

impl ConfusionMatrix {
    /// Creates an empty `n × n` confusion matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one class");
        ConfusionMatrix { n, counts: vec![0; n * n] }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, true_class: usize, predicted: usize) {
        assert!(true_class < self.n && predicted < self.n, "label out of range");
        self.counts[true_class * self.n + predicted] += 1;
    }

    /// Count in cell `(true, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn count(&self, true_class: usize, predicted: usize) -> u64 {
        assert!(true_class < self.n && predicted < self.n, "label out of range");
        self.counts[true_class * self.n + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n).map(|i| self.counts[i * self.n + i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall: `correct_c / total_c` (0 for unseen classes).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn recall(&self, class: usize) -> f64 {
        assert!(class < self.n, "label out of range");
        let row: u64 = (0..self.n).map(|p| self.counts[class * self.n + p]).sum();
        if row == 0 {
            return 0.0;
        }
        self.counts[class * self.n + class] as f64 / row as f64
    }
}

/// Fraction of `(predicted, truth)` pairs that agree.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "accuracy length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_accumulates() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(1, 2);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(1, 2), 1);
        assert_eq!(cm.total(), 3);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_per_class() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        assert_eq!(cm.recall(0), 0.5);
        assert_eq!(cm.recall(1), 1.0);
    }

    #[test]
    fn recall_of_unseen_class_is_zero() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.recall(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_out_of_range_panics() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
