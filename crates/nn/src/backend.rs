//! The weight-storage abstraction separating model code from hardware.
//!
//! An analog resistive crossbar performs exactly three matrix cycles (paper
//! Sec. II-A): a forward vector–matrix product, a backward (transposed)
//! product, and a parallel rank-1 weight update. [`LinearBackend`] captures
//! that contract. `enw-nn` supplies the exact floating-point implementation
//! ([`DigitalLinear`]); `enw-crossbar` supplies device-accurate analog
//! tiles. Models written against the trait run unchanged on either.

use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

/// The three matrix cycles of a trainable linear operator.
///
/// Implementations store an `out_dim × (in_dim + 1)` weight matrix: the
/// extra column is the bias, driven by a constant 1 appended to the input
/// (the standard crossbar bias row). All three methods take `&mut self`
/// because analog implementations consume entropy for noise and pulse
/// stochasticity even on reads.
pub trait LinearBackend {
    /// Logical input dimension (excluding the bias input).
    fn in_dim(&self) -> usize;

    /// Output dimension.
    fn out_dim(&self) -> usize;

    /// Forward cycle: `z = W · [x; 1]`, allocating the result. The
    /// default allocates once and delegates to the required
    /// [`forward_into`](LinearBackend::forward_into) — the `_into` form
    /// is the primitive so hot inference paths are allocation-free by
    /// construction (ENW-M002 walks them transitively).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.out_dim()];
        self.forward_into(x, &mut y);
        y
    }

    /// Forward cycle into a caller-owned buffer (`out` is fully
    /// overwritten). Required: every backend must provide a form that
    /// writes directly into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()` or `out.len() != out_dim()`.
    fn forward_into(&mut self, x: &[f32], out: &mut [f32]);

    /// Backward cycle: returns `Wᵀ · delta` truncated to the logical input
    /// dimension (the bias column's gradient is internal to the layer).
    /// The default allocates once and delegates to the required
    /// [`backward_into`](LinearBackend::backward_into).
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != out_dim()`.
    fn backward(&mut self, delta: &[f32]) -> Vec<f32> {
        let mut dx = vec![0.0f32; self.in_dim()];
        self.backward_into(delta, &mut dx);
        dx
    }

    /// Backward cycle into a caller-owned buffer of `in_dim()` elements
    /// (`out` is fully overwritten). Required: every backend must provide
    /// a form that writes directly into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != out_dim()` or `out.len() != in_dim()`.
    fn backward_into(&mut self, delta: &[f32], out: &mut [f32]);

    /// Update cycle: `W += lr · delta · [x; 1]ᵀ` (or the hardware
    /// approximation of it).
    ///
    /// # Panics
    ///
    /// Implementations panic on dimension mismatch.
    fn update(&mut self, delta: &[f32], x: &[f32], lr: f32);

    /// A snapshot of the currently stored weights (including the bias
    /// column), read out exactly. Used for inspection and tests; hardware
    /// backends may model this as a slow, precise read.
    fn weights(&self) -> Matrix;
}

/// Exact floating-point weights — the software baseline every analog result
/// in the paper is compared against.
///
/// # Example
///
/// ```
/// use enw_nn::backend::{DigitalLinear, LinearBackend};
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut lin = DigitalLinear::new(3, 2, &mut rng);
/// let z = lin.forward(&[0.1, -0.2, 0.3]);
/// assert_eq!(z.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalLinear {
    weights: Matrix, // out_dim x (in_dim + 1)
    in_dim: usize,
}

impl DigitalLinear {
    /// Creates a layer with Xavier-uniform initial weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let mut weights = Matrix::random_uniform(out_dim, in_dim + 1, -limit, limit, rng);
        for r in 0..out_dim {
            weights.set(r, in_dim, 0.0); // zero bias column
        }
        DigitalLinear { weights, in_dim }
    }

    /// Creates a layer from an explicit weight matrix
    /// (`out_dim × (in_dim + 1)`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer than two columns.
    pub fn from_weights(weights: Matrix) -> Self {
        assert!(weights.cols() >= 2, "weight matrix needs at least one input and a bias column");
        let in_dim = weights.cols() - 1;
        DigitalLinear { weights, in_dim }
    }

    /// Replaces the stored weights (shape-checked). Used by
    /// quantization-aware training, which alternates between a
    /// full-precision master copy and its quantized image.
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the current weights.
    pub fn set_weights(&mut self, weights: Matrix) {
        assert_eq!(
            (weights.rows(), weights.cols()),
            (self.weights.rows(), self.weights.cols()),
            "weight shape mismatch"
        );
        self.weights = weights;
    }
}

/// Checks out a scratch buffer holding `[x; 1]` — the bias-augmented
/// input every backend drives its weight matrix with.
///
/// # Panics
///
/// Panics if `x.len() != in_dim`.
pub(crate) fn augmented_scratch(x: &[f32], in_dim: usize) -> enw_parallel::scratch::ScratchF32 {
    assert_eq!(x.len(), in_dim, "input dimension mismatch");
    let mut xa = enw_parallel::scratch::take_f32(in_dim + 1);
    xa[..in_dim].copy_from_slice(x);
    xa[in_dim] = 1.0;
    xa
}

impl LinearBackend for DigitalLinear {
    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    // enw:hot
    fn forward_into(&mut self, x: &[f32], out: &mut [f32]) {
        let xa = augmented_scratch(x, self.in_dim);
        self.weights.matvec_into(&xa, out);
    }

    // enw:hot
    fn backward_into(&mut self, delta: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.in_dim, "gradient output dimension mismatch");
        let mut full = enw_parallel::scratch::take_f32(self.weights.cols());
        self.weights.matvec_t_into(delta, &mut full);
        out.copy_from_slice(&full[..self.in_dim]);
    }

    fn update(&mut self, delta: &[f32], x: &[f32], lr: f32) {
        let xa = augmented_scratch(x, self.in_dim);
        // Gradient descent: W -= lr * dL/dz * x^T, so scale is -lr.
        self.weights.rank1_update(delta, &xa, -lr);
    }

    fn weights(&self) -> Matrix {
        self.weights.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_includes_bias() {
        let w = Matrix::from_rows(&[&[1.0, 2.0, 0.5]]); // 1 output, 2 inputs + bias
        let mut lin = DigitalLinear::from_weights(w);
        assert_eq!(lin.forward(&[1.0, 1.0]), vec![3.5]);
    }

    #[test]
    fn backward_drops_bias_gradient() {
        let w = Matrix::from_rows(&[&[1.0, 2.0, 0.5]]);
        let mut lin = DigitalLinear::from_weights(w);
        let dx = lin.backward(&[2.0]);
        assert_eq!(dx, vec![2.0, 4.0]); // bias component 1.0 dropped
    }

    #[test]
    fn update_moves_against_gradient() {
        let w = Matrix::from_rows(&[&[0.0, 0.0, 0.0]]);
        let mut lin = DigitalLinear::from_weights(w);
        lin.update(&[1.0], &[1.0, 2.0], 0.1);
        let snap = lin.weights();
        assert!((snap.at(0, 0) + 0.1).abs() < 1e-6);
        assert!((snap.at(0, 1) + 0.2).abs() < 1e-6);
        assert!((snap.at(0, 2) + 0.1).abs() < 1e-6); // bias sees x=1
    }

    #[test]
    fn xavier_init_bounded_and_bias_zero() {
        let mut rng = Rng64::new(3);
        let lin = DigitalLinear::new(10, 5, &mut rng);
        let w = lin.weights();
        let limit = (6.0f64 / 15.0).sqrt() as f32;
        for r in 0..5 {
            for c in 0..10 {
                assert!(w.at(r, c).abs() <= limit);
            }
            assert_eq!(w.at(r, 10), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_len_panics() {
        let mut rng = Rng64::new(0);
        DigitalLinear::new(3, 2, &mut rng).forward(&[1.0]);
    }

    /// Gradient check: the backend's update must reduce squared error on a
    /// linear regression task.
    #[test]
    fn sgd_on_linear_regression_converges() {
        let mut rng = Rng64::new(7);
        let mut lin = DigitalLinear::new(2, 1, &mut rng);
        // Target function y = 3x0 - 2x1 + 0.5
        let target = |x: &[f32]| 3.0 * x[0] - 2.0 * x[1] + 0.5;
        for _ in 0..2000 {
            let x = [rng.range(-1.0, 1.0) as f32, rng.range(-1.0, 1.0) as f32];
            let y = lin.forward(&x)[0];
            let err = y - target(&x);
            lin.update(&[err], &x, 0.05);
        }
        let w = lin.weights();
        assert!((w.at(0, 0) - 3.0).abs() < 0.05, "w0 {}", w.at(0, 0));
        assert!((w.at(0, 1) + 2.0).abs() < 0.05, "w1 {}", w.at(0, 1));
        assert!((w.at(0, 2) - 0.5).abs() < 0.05, "bias {}", w.at(0, 2));
    }
}
