//! A dense layer: a [`LinearBackend`] followed by an element-wise
//! activation, with the caching backpropagation needs.

use crate::activation::Activation;
use crate::backend::LinearBackend;

/// A fully connected layer `a = f(W · [x; 1])` over any weight backend.
///
/// The layer caches the last input and pre-activation so that
/// [`backward`](DenseLayer::backward) and [`apply_update`](DenseLayer::apply_update)
/// can run without the caller re-supplying them — mirroring how a crossbar
/// tile holds its operands in local registers between cycles.
#[derive(Debug, Clone)]
pub struct DenseLayer<B> {
    backend: B,
    activation: Activation,
    cached_input: Vec<f32>,
    cached_pre: Vec<f32>,
    cached_delta: Vec<f32>,
}

impl<B: LinearBackend> DenseLayer<B> {
    /// Wraps a backend with an activation.
    pub fn new(backend: B, activation: Activation) -> Self {
        DenseLayer {
            backend,
            activation,
            cached_input: Vec::new(),
            cached_pre: Vec::new(),
            cached_delta: Vec::new(),
        }
    }

    /// Logical input dimension.
    pub fn in_dim(&self) -> usize {
        self.backend.in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.backend.out_dim()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Shared access to the underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the underlying backend (e.g. to recalibrate an
    /// analog tile mid-training).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Forward pass; caches input and pre-activation for a later backward
    /// pass.
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        self.cached_input = x.to_vec();
        self.cached_pre = self.backend.forward(x);
        let mut a = self.cached_pre.clone();
        self.activation.apply_slice(&mut a);
        a
    }

    /// Inference-only forward pass (no caching).
    pub fn infer(&mut self, x: &[f32]) -> Vec<f32> {
        let mut a = self.backend.forward(x);
        self.activation.apply_slice(&mut a);
        a
    }

    /// Inference-only forward pass into a caller-owned buffer (`out` is
    /// fully overwritten; no caching, no allocation beyond what the
    /// backend borrows from scratch pools).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()` or `out.len() != out_dim()`.
    // enw:hot
    pub fn infer_into(&mut self, x: &[f32], out: &mut [f32]) {
        self.backend.forward_into(x, out);
        self.activation.apply_slice(out);
    }

    /// Backward pass: converts the upstream gradient `dL/da` into `dL/dx`,
    /// caching the local delta `dL/dz` for the update cycle.
    ///
    /// # Panics
    ///
    /// Panics if called before [`forward`](DenseLayer::forward) or with a
    /// gradient of the wrong length.
    pub fn backward(&mut self, upstream: &[f32]) -> Vec<f32> {
        assert_eq!(
            upstream.len(),
            self.cached_pre.len(),
            "backward called with mismatched gradient (did forward run?)"
        );
        self.cached_delta = upstream
            .iter()
            .zip(&self.cached_pre)
            .map(|(g, &z)| g * self.activation.derivative(z))
            .collect();
        self.backend.backward(&self.cached_delta)
    }

    /// Update cycle: applies the cached rank-1 gradient with learning rate
    /// `lr`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`backward`](DenseLayer::backward).
    pub fn apply_update(&mut self, lr: f32) {
        assert!(!self.cached_delta.is_empty(), "apply_update called before backward");
        self.backend.update(&self.cached_delta, &self.cached_input, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DigitalLinear;
    use enw_numerics::matrix::Matrix;

    fn layer(act: Activation) -> DenseLayer<DigitalLinear> {
        let w = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[0.5, 0.5, 1.0]]);
        DenseLayer::new(DigitalLinear::from_weights(w), act)
    }

    #[test]
    fn forward_applies_activation() {
        let mut l = layer(Activation::Relu);
        let a = l.forward(&[1.0, 2.0]);
        assert_eq!(a, vec![0.0, 2.5]); // pre = [-1.0, 2.5]
    }

    #[test]
    fn backward_masks_through_relu() {
        let mut l = layer(Activation::Relu);
        l.forward(&[1.0, 2.0]); // pre = [-1.0, 2.5]
        let dx = l.backward(&[1.0, 1.0]);
        // Unit 0 is dead (pre < 0), so only row 1 contributes.
        assert_eq!(dx, vec![0.5, 0.5]);
    }

    #[test]
    fn update_uses_cached_operands() {
        let mut l = layer(Activation::Identity);
        l.forward(&[1.0, 0.0]);
        l.backward(&[1.0, 0.0]);
        l.apply_update(0.1);
        let w = l.backend().weights();
        assert!((w.at(0, 0) - 0.9).abs() < 1e-6); // moved against gradient
        assert_eq!(w.at(1, 0), 0.5); // zero delta row untouched
    }

    #[test]
    #[should_panic(expected = "before backward")]
    fn update_without_backward_panics() {
        layer(Activation::Identity).apply_update(0.1);
    }

    #[test]
    #[should_panic(expected = "did forward run")]
    fn backward_without_forward_panics() {
        layer(Activation::Identity).backward(&[1.0, 1.0]);
    }

    /// Full finite-difference gradient check through activation + backend.
    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut l = layer(Activation::Tanh);
        let x = [0.3f32, -0.7];
        // Loss L = sum(a); dL/da = 1.
        let dx = {
            l.forward(&x);
            l.backward(&[1.0, 1.0])
        };
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let lp: f32 = l.infer(&xp).iter().sum();
            let lm: f32 = l.infer(&xm).iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-2, "dim {i}: {num} vs {}", dx[i]);
        }
    }
}
