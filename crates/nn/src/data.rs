//! Labeled datasets and the synthetic image-classification generator.
//!
//! The paper's analog-training experiments use MNIST/CIFAR-10; those
//! datasets are not shippable inside this repository, so the workspace
//! substitutes [`SyntheticImages`]: a deterministic generator producing
//! Gaussian class clusters with spatially correlated "pixels". The
//! device-requirement experiments (E2/E4) measure *relative* accuracy
//! degradation between analog and floating-point training on the same data,
//! which this generator preserves (see DESIGN.md, substitutions table).

use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

/// A labeled classification dataset with row-major inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from inputs (one row per sample) and labels.
    ///
    /// # Panics
    ///
    /// Panics if the row count and label count differ, or any label is
    /// `>= num_classes`.
    pub fn new(inputs: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(inputs.rows(), labels.len(), "one label per input row");
        assert!(labels.iter().all(|&l| l < num_classes), "labels must be < num_classes");
        Dataset { inputs, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.inputs.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Input row `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn input(&self, i: usize) -> &[f32] {
        self.inputs.row(i)
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }
}

/// A train/test split produced by a generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training partition.
    pub train: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
}

/// Builder-configured synthetic image-classification generator.
///
/// Each class `c` gets a prototype vector built from smoothed Gaussian
/// noise (adjacent "pixels" are correlated, as in natural images); samples
/// are the prototype plus i.i.d. Gaussian pixel noise, squashed to `[0, 1]`
/// through a logistic, like normalized grayscale intensities.
///
/// # Example
///
/// ```
/// use enw_nn::data::SyntheticImages;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(9);
/// let split = SyntheticImages::builder()
///     .classes(10)
///     .dim(64)
///     .train_per_class(10)
///     .test_per_class(5)
///     .build(&mut rng);
/// assert_eq!(split.train.len(), 100);
/// assert_eq!(split.test.dim(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticImages {
    classes: usize,
    dim: usize,
    train_per_class: usize,
    test_per_class: usize,
    noise: f64,
    smoothing: usize,
}

impl SyntheticImages {
    /// Starts a builder with MNIST-like defaults (10 classes, 784 dims).
    pub fn builder() -> SyntheticImages {
        SyntheticImages {
            classes: 10,
            dim: 784,
            train_per_class: 100,
            test_per_class: 20,
            noise: 0.6,
            smoothing: 3,
        }
    }

    /// Sets the number of classes.
    pub fn classes(mut self, n: usize) -> Self {
        self.classes = n;
        self
    }

    /// Sets the input dimensionality ("pixel" count).
    pub fn dim(mut self, d: usize) -> Self {
        self.dim = d;
        self
    }

    /// Sets training samples per class.
    pub fn train_per_class(mut self, n: usize) -> Self {
        self.train_per_class = n;
        self
    }

    /// Sets test samples per class.
    pub fn test_per_class(mut self, n: usize) -> Self {
        self.test_per_class = n;
        self
    }

    /// Sets the per-pixel Gaussian noise standard deviation (task
    /// difficulty knob; default 0.6).
    pub fn noise(mut self, sigma: f64) -> Self {
        self.noise = sigma;
        self
    }

    /// Generates the train/test split.
    ///
    /// # Panics
    ///
    /// Panics if classes, dim or train_per_class is zero.
    pub fn build(self, rng: &mut Rng64) -> Split {
        assert!(self.classes > 0 && self.dim > 0, "classes and dim must be positive");
        assert!(self.train_per_class > 0, "need at least one training sample per class");
        let prototypes: Vec<Vec<f32>> = (0..self.classes).map(|_| self.prototype(rng)).collect();
        let train = self.sample_set(&prototypes, self.train_per_class, rng);
        let test = self.sample_set(&prototypes, self.test_per_class, rng);
        Split { train, test }
    }

    fn prototype(&self, rng: &mut Rng64) -> Vec<f32> {
        let raw: Vec<f64> = (0..self.dim).map(|_| rng.normal()).collect();
        // Moving-average smoothing: neighbouring pixels become correlated.
        let w = self.smoothing;
        (0..self.dim)
            .map(|i| {
                let lo = i.saturating_sub(w);
                let hi = (i + w + 1).min(self.dim);
                let window = &raw[lo..hi];
                (window.iter().sum::<f64>() / window.len() as f64 * 2.0) as f32
            })
            .collect()
    }

    fn sample_set(&self, prototypes: &[Vec<f32>], per_class: usize, rng: &mut Rng64) -> Dataset {
        let n = per_class * self.classes;
        let mut inputs = Matrix::zeros(n.max(1), self.dim);
        let mut labels = Vec::with_capacity(n);
        let mut row = 0;
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let dst = inputs.row_mut(row);
                for (d, p) in dst.iter_mut().zip(proto) {
                    let z = *p as f64 + rng.normal() * self.noise;
                    // Logistic squash to [0,1] grayscale.
                    *d = (1.0 / (1.0 + (-z).exp())) as f32;
                }
                labels.push(c);
                row += 1;
            }
        }
        if n == 0 {
            // Degenerate but legal: an empty test partition.
            return Dataset {
                inputs: Matrix::zeros(1, self.dim),
                labels: vec![],
                num_classes: self.classes,
            };
        }
        Dataset::new(inputs, labels, self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_label_ranges() {
        let mut rng = Rng64::new(1);
        let s = SyntheticImages::builder()
            .classes(5)
            .dim(20)
            .train_per_class(8)
            .test_per_class(3)
            .build(&mut rng);
        assert_eq!(s.train.len(), 40);
        assert_eq!(s.test.len(), 15);
        assert_eq!(s.train.num_classes(), 5);
        for i in 0..s.train.len() {
            assert!(s.train.label(i) < 5);
            assert_eq!(s.train.input(i).len(), 20);
        }
    }

    #[test]
    fn pixels_are_normalized() {
        let mut rng = Rng64::new(2);
        let s = SyntheticImages::builder()
            .classes(3)
            .dim(30)
            .train_per_class(5)
            .test_per_class(2)
            .build(&mut rng);
        for i in 0..s.train.len() {
            assert!(s.train.input(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticImages::builder()
            .classes(3)
            .dim(10)
            .train_per_class(4)
            .test_per_class(2)
            .build(&mut Rng64::new(7));
        let b = SyntheticImages::builder()
            .classes(3)
            .dim(10)
            .train_per_class(4)
            .test_per_class(2)
            .build(&mut Rng64::new(7));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn classes_are_distinguishable() {
        // Mean intra-class distance must be smaller than inter-class
        // distance, otherwise the task is unlearnable.
        let mut rng = Rng64::new(3);
        let s = SyntheticImages::builder()
            .classes(4)
            .dim(50)
            .train_per_class(20)
            .test_per_class(1)
            .build(&mut rng);
        let d = |a: &[f32], b: &[f32]| enw_numerics::vector::dist_l2(a, b) as f64;
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for i in 0..s.train.len() {
            for j in (i + 1)..s.train.len() {
                let dist = d(s.train.input(i), s.train.input(j));
                if s.train.label(i) == s.train.label(j) {
                    intra += dist;
                    n_intra += 1;
                } else {
                    inter += dist;
                    n_inter += 1;
                }
            }
        }
        assert!(inter / n_inter as f64 > intra / n_intra as f64 * 1.05);
    }

    #[test]
    #[should_panic(expected = "one label per input")]
    fn mismatched_labels_panic() {
        Dataset::new(Matrix::zeros(3, 2), vec![0, 1], 2);
    }

    #[test]
    fn empty_test_partition_is_legal() {
        let mut rng = Rng64::new(4);
        let s = SyntheticImages::builder()
            .classes(2)
            .dim(4)
            .train_per_class(2)
            .test_per_class(0)
            .build(&mut rng);
        assert!(s.test.is_empty());
    }
}
