//! Omniglot-style few-shot data: stroke-built character classes and N-way
//! K-shot episode sampling.
//!
//! Omniglot (1623 handwritten character classes, 20 samples each) drives
//! the paper's one/few-shot experiments (Sec. III–IV). This module supplies
//! the workspace substitute: each synthetic "character" is a superposition
//! of localized stroke bumps over a 1-D pixel canvas; intra-class variation
//! jitters stroke amplitudes and positions, exactly the kind of structured
//! perturbation handwriting produces. What the downstream experiments need
//! is an input space whose classes form tight, separable clusters after
//! embedding — which this generator provides deterministically.

use enw_numerics::rng::Rng64;

/// One stroke: a Gaussian bump on the pixel canvas.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stroke {
    center: f64,
    width: f64,
    amplitude: f64,
}

/// A universe of synthetic character classes for few-shot learning.
///
/// # Example
///
/// ```
/// use enw_nn::fewshot::FewShotDomain;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(5);
/// let domain = FewShotDomain::generate(50, 64, &mut rng);
/// let sample = domain.sample(7, &mut rng);
/// assert_eq!(sample.len(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FewShotDomain {
    dim: usize,
    classes: Vec<Vec<Stroke>>,
    amplitude_jitter: f64,
    center_jitter: f64,
    pixel_noise: f64,
}

impl FewShotDomain {
    /// Generates `num_classes` stroke-built classes over a `dim`-pixel
    /// canvas with default jitter parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` or `dim` is zero.
    pub fn generate(num_classes: usize, dim: usize, rng: &mut Rng64) -> Self {
        Self::generate_with(num_classes, dim, 5, 0.15, 0.8, 0.05, rng)
    }

    /// Fully parameterized generation: `strokes` bumps per class,
    /// `amplitude_jitter`/`center_jitter` intra-class variation, and
    /// additive `pixel_noise`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes`, `dim` or `strokes` is zero.
    pub fn generate_with(
        num_classes: usize,
        dim: usize,
        strokes: usize,
        amplitude_jitter: f64,
        center_jitter: f64,
        pixel_noise: f64,
        rng: &mut Rng64,
    ) -> Self {
        assert!(num_classes > 0 && dim > 0 && strokes > 0, "degenerate domain");
        let classes = (0..num_classes)
            .map(|_| {
                (0..strokes)
                    .map(|_| Stroke {
                        center: rng.range(0.0, dim as f64),
                        width: rng.range(1.0, dim as f64 / 6.0),
                        amplitude: rng.range(0.5, 1.5)
                            * if rng.bernoulli(0.5) { 1.0 } else { -1.0 },
                    })
                    .collect()
            })
            .collect();
        FewShotDomain { dim, classes, amplitude_jitter, center_jitter, pixel_noise }
    }

    /// Canvas dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes in the universe.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Draws one sample of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample(&self, class: usize, rng: &mut Rng64) -> Vec<f32> {
        assert!(class < self.classes.len(), "class {class} out of range");
        let mut pixels = vec![0.0f64; self.dim];
        for stroke in &self.classes[class] {
            let amp = stroke.amplitude * (1.0 + self.amplitude_jitter * rng.normal());
            let center = stroke.center + self.center_jitter * rng.normal();
            for (i, px) in pixels.iter_mut().enumerate() {
                let d = (i as f64 - center) / stroke.width;
                *px += amp * (-0.5 * d * d).exp();
            }
        }
        pixels.into_iter().map(|p| (p + self.pixel_noise * rng.normal()) as f32).collect()
    }
}

/// One N-way K-shot episode: support and query sets with episode-local
/// labels in `0..n_way`.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// `n_way * k_shot` labeled support examples.
    pub support: Vec<(Vec<f32>, usize)>,
    /// `n_way * n_query` labeled query examples.
    pub query: Vec<(Vec<f32>, usize)>,
}

/// Samples N-way K-shot episodes from a [`FewShotDomain`].
///
/// # Example
///
/// ```
/// use enw_nn::fewshot::{EpisodeSampler, FewShotDomain};
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(1);
/// let domain = FewShotDomain::generate(30, 32, &mut rng);
/// let sampler = EpisodeSampler { n_way: 5, k_shot: 1, n_query: 4 };
/// let ep = sampler.sample(&domain, &mut rng);
/// assert_eq!(ep.support.len(), 5);
/// assert_eq!(ep.query.len(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeSampler {
    /// Number of distinct classes per episode.
    pub n_way: usize,
    /// Support examples per class.
    pub k_shot: usize,
    /// Query examples per class.
    pub n_query: usize,
}

impl EpisodeSampler {
    /// Draws one episode.
    ///
    /// # Panics
    ///
    /// Panics if the domain has fewer than `n_way` classes or any episode
    /// parameter is zero.
    pub fn sample(&self, domain: &FewShotDomain, rng: &mut Rng64) -> Episode {
        assert!(self.n_way > 0 && self.k_shot > 0 && self.n_query > 0, "degenerate episode");
        assert!(
            self.n_way <= domain.num_classes(),
            "domain has {} classes, episode needs {}",
            domain.num_classes(),
            self.n_way
        );
        let class_ids = rng.sample_indices(domain.num_classes(), self.n_way);
        let mut support = Vec::with_capacity(self.n_way * self.k_shot);
        let mut query = Vec::with_capacity(self.n_way * self.n_query);
        for (local, &cid) in class_ids.iter().enumerate() {
            for _ in 0..self.k_shot {
                support.push((domain.sample(cid, rng), local));
            }
            for _ in 0..self.n_query {
                query.push((domain.sample(cid, rng), local));
            }
        }
        Episode { support, query }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enw_numerics::vector::dist_l2;

    #[test]
    fn sample_dimensions() {
        let mut rng = Rng64::new(1);
        let d = FewShotDomain::generate(10, 48, &mut rng);
        assert_eq!(d.dim(), 48);
        assert_eq!(d.num_classes(), 10);
        assert_eq!(d.sample(0, &mut rng).len(), 48);
    }

    #[test]
    fn intra_class_tighter_than_inter_class() {
        let mut rng = Rng64::new(2);
        let d = FewShotDomain::generate(20, 64, &mut rng);
        let mut intra = 0.0f64;
        let mut inter = 0.0f64;
        let mut n = 0;
        for c in 0..10 {
            let a = d.sample(c, &mut rng);
            let b = d.sample(c, &mut rng);
            let other = d.sample((c + 5) % 20, &mut rng);
            intra += dist_l2(&a, &b) as f64;
            inter += dist_l2(&a, &other) as f64;
            n += 1;
        }
        assert!(inter / n as f64 > 1.5 * intra / n as f64, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn episode_structure() {
        let mut rng = Rng64::new(3);
        let d = FewShotDomain::generate(25, 32, &mut rng);
        let s = EpisodeSampler { n_way: 5, k_shot: 3, n_query: 2 };
        let ep = s.sample(&d, &mut rng);
        assert_eq!(ep.support.len(), 15);
        assert_eq!(ep.query.len(), 10);
        // Every local label appears exactly k_shot times in support.
        for lbl in 0..5 {
            assert_eq!(ep.support.iter().filter(|(_, l)| *l == lbl).count(), 3);
            assert_eq!(ep.query.iter().filter(|(_, l)| *l == lbl).count(), 2);
        }
    }

    #[test]
    fn episode_classes_are_distinct() {
        // Labels are episode-local 0..n_way, so supports with different
        // labels must come from different underlying classes: their
        // samples should not coincide.
        let mut rng = Rng64::new(4);
        let d = FewShotDomain::generate(8, 32, &mut rng);
        let s = EpisodeSampler { n_way: 8, k_shot: 1, n_query: 1 };
        let ep = s.sample(&d, &mut rng);
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert!(dist_l2(&ep.support[i].0, &ep.support[j].0) > 1e-3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_panics() {
        let mut rng = Rng64::new(5);
        let d = FewShotDomain::generate(3, 16, &mut rng);
        d.sample(3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "episode needs")]
    fn too_many_ways_panics() {
        let mut rng = Rng64::new(6);
        let d = FewShotDomain::generate(3, 16, &mut rng);
        EpisodeSampler { n_way: 5, k_shot: 1, n_query: 1 }.sample(&d, &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let d1 = FewShotDomain::generate(5, 16, &mut Rng64::new(9));
        let d2 = FewShotDomain::generate(5, 16, &mut Rng64::new(9));
        assert_eq!(d1, d2);
    }
}
