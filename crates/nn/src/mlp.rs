//! Multi-layer perceptrons over any [`LinearBackend`], trained with
//! per-sample SGD.
//!
//! Per-sample (batch-size-1) SGD is deliberate: it is exactly the regime a
//! resistive-crossbar accelerator runs in, where each example triggers one
//! forward, one backward and one parallel rank-1 update cycle per layer
//! (paper Sec. II-A).

use crate::activation::Activation;
use crate::backend::{DigitalLinear, LinearBackend};
use crate::data::Dataset;
use crate::layer::DenseLayer;
use crate::loss::softmax_cross_entropy;
use enw_numerics::rng::Rng64;
use enw_numerics::vector::argmax;

/// Hyper-parameters for SGD training.
///
/// Construct via [`SgdConfig::builder`]; direct struct-literal
/// construction in downstream code is deprecated (it bypasses
/// validation and will stop compiling as fields are added).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Step size for every rank-1 update.
    pub learning_rate: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { epochs: 10, learning_rate: 0.05 }
    }
}

impl SgdConfig {
    /// Starts a validating builder seeded with the default schedule.
    pub fn builder() -> SgdConfigBuilder {
        SgdConfigBuilder { cfg: SgdConfig::default() }
    }
}

/// Validating builder for [`SgdConfig`].
///
/// `build()` rejects schedules that cannot train (zero epochs,
/// non-positive or non-finite step sizes) with a typed
/// [`NnError`](crate::error::NnError).
#[derive(Debug, Clone)]
pub struct SgdConfigBuilder {
    cfg: SgdConfig,
}

impl SgdConfigBuilder {
    /// Sets the number of passes over the training set.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Sets the step size for every rank-1 update.
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.cfg.learning_rate = learning_rate;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<SgdConfig, crate::error::NnError> {
        use crate::error::NnError;
        if self.cfg.epochs == 0 {
            return Err(NnError::InvalidConfig { reason: "epochs must be at least 1" });
        }
        if !self.cfg.learning_rate.is_finite() || self.cfg.learning_rate <= 0.0 {
            return Err(NnError::InvalidConfig {
                reason: "learning_rate must be finite and positive",
            });
        }
        Ok(self.cfg)
    }
}

/// A feed-forward classifier built from [`DenseLayer`]s.
///
/// # Example
///
/// ```
/// use enw_nn::mlp::Mlp;
/// use enw_nn::activation::Activation;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut mlp = Mlp::digital(&[8, 16, 3], Activation::Tanh, &mut rng);
/// let logits = mlp.predict(&[0.0; 8]);
/// assert_eq!(logits.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp<B> {
    layers: Vec<DenseLayer<B>>,
}

impl Mlp<DigitalLinear> {
    /// Builds a digital (floating-point) MLP with the given layer sizes.
    ///
    /// `dims = [in, h1, …, out]`; hidden layers use `hidden_activation`,
    /// the output layer is identity (raw logits).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn digital(dims: &[usize], hidden_activation: Activation, rng: &mut Rng64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act =
                    if i + 2 == dims.len() { Activation::Identity } else { hidden_activation };
                DenseLayer::new(DigitalLinear::new(w[0], w[1], rng), act)
            })
            .collect();
        Mlp { layers }
    }
}

impl<B: LinearBackend> Mlp<B> {
    /// Builds an MLP from pre-constructed layers (used by the analog
    /// substrate, which needs device-specific tile construction).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions do not chain.
    pub fn from_layers(layers: Vec<DenseLayer<B>>) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].out_dim(), pair[1].in_dim(), "layer dimensions do not chain");
        }
        Mlp { layers }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output (class-count) dimension (0 for an empty stack, which the
    /// constructors reject).
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim())
    }

    /// The layer stack.
    pub fn layers(&self) -> &[DenseLayer<B>] {
        &self.layers
    }

    /// Mutable access to the layer stack.
    pub fn layers_mut(&mut self) -> &mut [DenseLayer<B>] {
        &mut self.layers
    }

    /// Inference forward pass returning raw logits.
    pub fn predict(&mut self, x: &[f32]) -> Vec<f32> {
        let mut logits = vec![0.0f32; self.out_dim()];
        self.predict_into(x, &mut logits);
        logits
    }

    /// Inference forward pass into a caller-owned logits buffer (`out`
    /// is fully overwritten). Per-layer activations ping-pong through
    /// two persistent workspaces borrowed from the thread-local scratch
    /// pool, so a warm steady-state call performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()` or `out.len() != out_dim()`.
    // enw:hot
    pub fn predict_into(&mut self, x: &[f32], out: &mut [f32]) {
        let last = self.layers.len() - 1;
        if last == 0 {
            return self.layers[0].infer_into(x, out);
        }
        let widest = self.layers[..last].iter().map(|l| l.out_dim()).max().unwrap_or(1);
        let mut cur = enw_parallel::scratch::take_f32(widest);
        let mut nxt = enw_parallel::scratch::take_f32(widest);
        let mut cur_len = self.layers[0].out_dim();
        self.layers[0].infer_into(x, &mut cur[..cur_len]);
        for i in 1..last {
            let w = self.layers[i].out_dim();
            self.layers[i].infer_into(&cur[..cur_len], &mut nxt[..w]);
            std::mem::swap(&mut cur, &mut nxt);
            cur_len = w;
        }
        self.layers[last].infer_into(&cur[..cur_len], out);
    }

    /// Predicted class label.
    pub fn classify(&mut self, x: &[f32]) -> usize {
        let mut logits = enw_parallel::scratch::take_f32(self.out_dim());
        self.predict_into(x, &mut logits);
        argmax(&logits)
    }

    /// One SGD step on a single `(x, label)` pair; returns the sample loss.
    pub fn train_step(&mut self, x: &[f32], label: usize, lr: f32) -> f32 {
        let mut a = x.to_vec();
        for layer in &mut self.layers {
            a = layer.forward(&a);
        }
        let (loss, mut grad) = softmax_cross_entropy(&a, label);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        for layer in &mut self.layers {
            layer.apply_update(lr);
        }
        loss
    }

    /// Trains with per-sample SGD; returns the mean loss of each epoch.
    pub fn train_sgd(&mut self, data: &Dataset, cfg: &SgdConfig, rng: &mut Rng64) -> Vec<f64> {
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut history = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            for &i in &order {
                total += self.train_step(data.input(i), data.label(i), cfg.learning_rate) as f64;
            }
            history.push(total / data.len() as f64);
        }
        history
    }

    /// Classification accuracy over a dataset.
    pub fn evaluate(&mut self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct =
            (0..data.len()).filter(|&i| self.classify(data.input(i)) == data.label(i)).count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticImages;

    #[test]
    fn dimensions_propagate() {
        let mut rng = Rng64::new(1);
        let mlp = Mlp::digital(&[4, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.layers().len(), 2);
    }

    #[test]
    fn output_layer_is_identity() {
        let mut rng = Rng64::new(1);
        let mlp = Mlp::digital(&[4, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.layers()[1].activation(), Activation::Identity);
        assert_eq!(mlp.layers()[0].activation(), Activation::Relu);
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn mismatched_layers_panic() {
        let mut rng = Rng64::new(1);
        let l1 = DenseLayer::new(DigitalLinear::new(4, 8, &mut rng), Activation::Tanh);
        let l2 = DenseLayer::new(DigitalLinear::new(9, 3, &mut rng), Activation::Identity);
        Mlp::from_layers(vec![l1, l2]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng64::new(2);
        let data = SyntheticImages::builder()
            .classes(3)
            .dim(12)
            .train_per_class(40)
            .test_per_class(10)
            .build(&mut rng);
        let mut mlp = Mlp::digital(&[12, 16, 3], Activation::Tanh, &mut rng);
        let hist =
            mlp.train_sgd(&data.train, &SgdConfig { epochs: 8, learning_rate: 0.05 }, &mut rng);
        assert!(hist.last().expect("epochs > 0") < &hist[0], "loss did not fall: {hist:?}");
    }

    #[test]
    fn learns_linearly_separable_task_to_high_accuracy() {
        let mut rng = Rng64::new(3);
        let data = SyntheticImages::builder()
            .classes(2)
            .dim(10)
            .train_per_class(80)
            .test_per_class(40)
            .noise(0.3)
            .build(&mut rng);
        let mut mlp = Mlp::digital(&[10, 16, 2], Activation::Tanh, &mut rng);
        mlp.train_sgd(&data.train, &SgdConfig { epochs: 15, learning_rate: 0.05 }, &mut rng);
        let acc = mlp.evaluate(&data.test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(SgdConfig::builder().build().unwrap(), SgdConfig::default());
    }

    #[test]
    fn builder_rejects_zero_epochs() {
        let err = SgdConfig::builder().epochs(0).build().unwrap_err();
        assert!(err.to_string().contains("epochs"), "{err}");
    }

    #[test]
    fn builder_rejects_bad_learning_rate() {
        assert!(SgdConfig::builder().learning_rate(0.0).build().is_err());
        assert!(SgdConfig::builder().learning_rate(f32::NAN).build().is_err());
        assert!(SgdConfig::builder().learning_rate(-0.1).build().is_err());
    }
}
