//! Activation functions and their derivatives.

/// An element-wise activation function.
///
/// The derivative is evaluated from the *pre-activation* value `z`, which is
/// what backpropagation caches.
///
/// # Example
///
/// ```
/// use enw_nn::activation::Activation;
///
/// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
/// assert_eq!(Activation::Relu.derivative(3.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// `f(z) = z` — used on output layers so that losses see raw logits.
    Identity,
    /// Rectified linear unit `max(0, z)`.
    Relu,
    /// Logistic sigmoid `1 / (1 + e^{-z})`.
    Sigmoid,
    /// Hyperbolic tangent — the default for analog-crossbar training
    /// studies, whose activations must stay in the bounded DAC range.
    #[default]
    Tanh,
}

impl Activation {
    /// Applies the function to one pre-activation value.
    #[inline]
    pub fn apply(self, z: f32) -> f32 {
        match self {
            Activation::Identity => z,
            Activation::Relu => z.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            Activation::Tanh => z.tanh(),
        }
    }

    /// Derivative `f'(z)` evaluated at the pre-activation value.
    #[inline]
    pub fn derivative(self, z: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(z);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
        }
    }

    /// Applies the function to a whole slice in place.
    pub fn apply_slice(self, zs: &mut [f32]) {
        for z in zs {
            *z = self.apply(*z);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        assert_eq!(Activation::Identity.apply(2.5), 2.5);
        assert_eq!(Activation::Identity.derivative(-3.0), 1.0);
    }

    #[test]
    fn relu_clips_negatives() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply(100.0) <= 1.0 && s.apply(-100.0) >= 0.0);
        assert!((s.derivative(0.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_odd_symmetry() {
        let t = Activation::Tanh;
        assert!((t.apply(1.0) + t.apply(-1.0)).abs() < 1e-6);
        assert!((t.derivative(0.0) - 1.0).abs() < 1e-6);
    }

    /// Finite-difference check of every derivative.
    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-3f32;
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            for z in [-2.0f32, -0.5, 0.1, 1.7] {
                let num = (act.apply(z + eps) - act.apply(z - eps)) / (2.0 * eps);
                assert!(
                    (num - act.derivative(z)).abs() < 1e-2,
                    "{act:?} at {z}: {num} vs {}",
                    act.derivative(z)
                );
            }
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut v = [-1.0, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut v);
        assert_eq!(v, [0.0, 0.0, 2.0]);
    }
}
