//! Loss functions and their gradients with respect to network outputs.

use enw_numerics::vector::softmax_into;

/// Softmax cross-entropy loss for one sample.
///
/// Returns `(loss, dL/dlogits)`. The gradient is the classic
/// `softmax(logits) − onehot(label)`, which assumes the final layer uses an
/// identity activation (i.e. produces raw logits).
///
/// # Panics
///
/// Panics if `logits` is empty or `label` is out of range.
pub fn softmax_cross_entropy(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    let mut grad = vec![0.0f32; logits.len()];
    let loss = softmax_cross_entropy_into(logits, label, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] into a caller-owned gradient buffer — the
/// allocation-free form steady-state training loops use. `grad` is fully
/// overwritten with `dL/dlogits`; the loss is returned.
///
/// # Panics
///
/// Panics if `logits` is empty, `label` is out of range, or the lengths
/// mismatch.
pub fn softmax_cross_entropy_into(logits: &[f32], label: usize, grad: &mut [f32]) -> f32 {
    assert!(label < logits.len(), "label {label} out of range");
    softmax_into(logits, 1.0, grad);
    let loss = -(grad[label].max(1e-12)).ln();
    grad[label] -= 1.0;
    loss
}

/// Mean squared error for one sample: `L = ½‖y − t‖²`.
///
/// Returns `(loss, dL/dy = y − t)`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn squared_error(output: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(output.len(), target.len(), "squared_error length mismatch");
    let grad: Vec<f32> = output.iter().zip(target).map(|(y, t)| y - t).collect();
    let loss = 0.5 * grad.iter().map(|g| g * g).sum::<f32>();
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let (loss, _) = softmax_cross_entropy(&[10.0, -10.0], 0);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_wrong_prediction_is_large() {
        let (loss, _) = softmax_cross_entropy(&[10.0, -10.0], 1);
        assert!(loss > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let (_, g) = softmax_cross_entropy(&[1.0, 2.0, 0.5], 1);
        assert!(g.iter().sum::<f32>().abs() < 1e-6);
        assert!(g[1] < 0.0); // pushes the true logit up
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = [0.4f32, -1.2, 0.9];
        let label = 2;
        let (_, g) = softmax_cross_entropy(&logits, label);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let num = (softmax_cross_entropy(&lp, label).0 - softmax_cross_entropy(&lm, label).0)
                / (2.0 * eps);
            assert!((num - g[i]).abs() < 1e-2, "dim {i}: {num} vs {}", g[i]);
        }
    }

    #[test]
    fn squared_error_zero_at_target() {
        let (loss, g) = squared_error(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(loss, 0.0);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn squared_error_known_value() {
        let (loss, g) = squared_error(&[2.0, 0.0], &[0.0, 0.0]);
        assert_eq!(loss, 2.0);
        assert_eq!(g, vec![2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        softmax_cross_entropy(&[1.0, 2.0], 5);
    }

    #[test]
    fn into_variant_is_bit_identical_to_allocating_form() {
        let logits = [0.3f32, -0.7, 1.1, 0.0];
        let (loss, grad) = softmax_cross_entropy(&logits, 2);
        let mut buf = [0.0f32; 4];
        let loss_into = softmax_cross_entropy_into(&logits, 2, &mut buf);
        assert_eq!(loss.to_bits(), loss_into.to_bits());
        for (a, b) in grad.iter().zip(&buf) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
