//! Typed failures for the digital NN substrate.
//!
//! Training hyper-parameters used to be plain structs with no validated
//! construction path; [`crate::mlp::SgdConfig::builder`] returns
//! `Result<_, NnError>` so out-of-range schedules are rejected before a
//! training loop starts.

use std::error::Error;
use std::fmt;

/// Why an NN configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A configuration violated a structural constraint.
    InvalidConfig {
        /// Which constraint failed.
        reason: &'static str,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidConfig { reason } => write!(f, "invalid NN config: {reason}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_constraint() {
        let e = NnError::InvalidConfig { reason: "epochs must be at least 1" };
        assert!(e.to_string().contains("epochs"), "{e}");
    }
}
