//! Digital neural-network substrate for the emerging-neural-workloads
//! workspace.
//!
//! The paper's experiments all need a conventional NN training/inference
//! stack underneath: the analog-crossbar section trains MLPs on simulated
//! device arrays, the MANN sections need learned feature embeddings, and
//! the recommendation section needs MLP stacks. This crate provides that
//! stack in plain Rust with one important twist: the weight storage and the
//! three matrix cycles (forward, backward, update) hide behind the
//! [`backend::LinearBackend`] trait, so the *same* model code runs on
//! floating-point weights ([`backend::DigitalLinear`]) or on a simulated
//! analog crossbar tile (`enw-crossbar::AnalogTile`).
//!
//! # Modules
//!
//! * [`activation`] — activation functions and their derivatives.
//! * [`backend`] — the [`backend::LinearBackend`] trait and the
//!   floating-point reference backend.
//! * [`conv`] — a compact CNN (im2col convolutions, max pooling) for the
//!   embedding/controller networks the MANN sections rely on.
//! * [`layer`] — a dense layer combining a backend with an activation.
//! * [`mlp`] — multi-layer perceptrons with SGD training.
//! * [`rnn`] — Elman recurrent networks with BPTT for sequence tasks.
//! * [`quantized`] — reduced-precision inference with statistical weight
//!   scaling and calibrated activation clipping (the 2-bit claim of
//!   Sec. II).
//! * [`loss`] — softmax cross-entropy and squared error.
//! * [`snapshot`] — byte-exact state serialization for bit-reproducible
//!   checkpoint/resume of training runs.
//! * [`data`] — labeled datasets and the synthetic image-classification
//!   generator (the workspace's MNIST substitute).
//! * [`fewshot`] — Omniglot-style class generators and N-way K-shot
//!   episode sampling.
//! * [`metrics`] — accuracy and confusion-matrix helpers.
//!
//! # Example: train a tiny classifier
//!
//! ```
//! use enw_nn::activation::Activation;
//! use enw_nn::data::SyntheticImages;
//! use enw_nn::mlp::{Mlp, SgdConfig};
//! use enw_numerics::rng::Rng64;
//!
//! let mut rng = Rng64::new(1);
//! let data = SyntheticImages::builder()
//!     .classes(4)
//!     .dim(16)
//!     .train_per_class(50)
//!     .test_per_class(20)
//!     .build(&mut rng);
//! let mut mlp = Mlp::digital(&[16, 32, 4], Activation::Tanh, &mut rng);
//! let cfg = SgdConfig { epochs: 5, learning_rate: 0.05 };
//! mlp.train_sgd(&data.train, &cfg, &mut rng);
//! let acc = mlp.evaluate(&data.test);
//! assert!(acc > 0.5); // far above the 0.25 chance level
//! ```

pub mod activation;
pub mod backend;
pub mod conv;
pub mod data;
pub mod error;
pub mod fewshot;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod quantized;
pub mod rnn;
pub mod snapshot;

pub use activation::Activation;
pub use backend::{DigitalLinear, LinearBackend};
pub use error::NnError;
pub use mlp::{Mlp, SgdConfig, SgdConfigBuilder};
