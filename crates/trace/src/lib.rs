//! `enw-trace` — the workspace-wide deterministic observability layer.
//!
//! The paper attributes every workload's cycles and joules to specific
//! stages — crossbar MVM vs. pulse update vs. transfer (Sec. II), the
//! X-MANN kernel breakdown (Sec. III), compute- vs. memory-bound DLRM
//! operators (Sec. V) — and the reproduction needs the same per-stage
//! attribution *inside* a training step, a scheduler tick, or a
//! gather/pool call. This crate provides it without giving up the
//! workspace's core guarantee: **every recorded figure is a pure function
//! of the workload, bit-identical across runs, hosts, and `ENW_THREADS`
//! settings.**
//!
//! # What can be recorded
//!
//! * **Spans** — named scoped regions ([`span`] guards, or the one-shot
//!   [`record_span`]). A span accumulates a hit count, elapsed time on
//!   the trace clock, and an explicit deterministic *work* figure
//!   (element counts, modeled ns) added by the instrumented code.
//! * **Counters** — named monotone `u64` sums ([`counter_add`]).
//! * **Histograms** — named fixed-bucket distributions of `u64` values
//!   ([`record_value`]; see [`histogram::Histogram`]). The serving
//!   runtime's latency percentiles are computed from these.
//!
//! # Determinism model
//!
//! Recording is thread-local: each thread owns a private recorder, and a
//! thread that exits merges its recorder into the process-wide sink
//! (merge-on-join — `enw-parallel` workers are scoped threads, so their
//! recorders merge exactly when `map_chunks` joins them). Every merged
//! quantity is a `u64` sum, a histogram bucket add, or an event-list
//! append canonicalized by sorting, so the merged totals are independent
//! of merge order and therefore of the worker count.
//!
//! Time never comes from the host by default: the trace clock is a
//! virtual nanosecond counter advanced explicitly ([`set_virtual_ns`],
//! used by `enw-serve`'s scheduler), so span durations are deterministic.
//! A bench harness *may* install a real monotonic source with
//! [`install_time_source`] — that is a profiling convenience and
//! explicitly outside the determinism contract (only `enw-bench` is
//! allowed ambient time by lint ENW-D002).
//!
//! # Overhead
//!
//! The mode switch is a single relaxed atomic load. With
//! `ENW_TRACE=off` (the default) every entry point returns before
//! touching thread-local state, so instrumented kernels run at their
//! uninstrumented speed (criterion-verified to be within noise).
//!
//! # Modes
//!
//! | `ENW_TRACE` | behaviour |
//! |---|---|
//! | `off` (default) | nothing recorded; near-zero overhead |
//! | `summary` | span/counter/histogram aggregates only |
//! | `full` | aggregates plus a chrome-trace-compatible event list |
//!
//! ```
//! use enw_trace as trace;
//!
//! trace::set_mode(trace::TraceMode::Summary);
//! {
//!     let s = trace::span("demo/stage");
//!     s.add_work(128);
//! }
//! trace::counter_add("demo.items", 3);
//! let report = trace::take_report();
//! assert_eq!(report.spans[0].name, "demo/stage");
//! assert_eq!(report.spans[0].work, 128);
//! trace::set_mode(trace::TraceMode::Off);
//! ```

pub mod histogram;
pub mod recorder;
pub mod report;

pub use histogram::Histogram;
pub use recorder::{
    counter_add, flush_local, record_span, record_span_io, record_value, reset, span, take_report,
    Span, SpanStat,
};
pub use report::{CounterEntry, HistEntry, SpanEntry, TraceEvent, TraceReport};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// How much the recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing (default); entry points cost one atomic load.
    Off,
    /// Aggregate spans, counters, and histograms.
    Summary,
    /// Aggregates plus the full chrome-trace event list.
    Full,
}

impl TraceMode {
    /// Parses the `ENW_TRACE` value; unknown strings mean [`TraceMode::Off`].
    pub fn from_env_str(s: &str) -> TraceMode {
        match s.trim() {
            "summary" => TraceMode::Summary,
            "full" => TraceMode::Full,
            _ => TraceMode::Off,
        }
    }

    /// Stable lower-case name (`off`/`summary`/`full`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Summary => "summary",
            TraceMode::Full => "full",
        }
    }
}

/// Mode cell: 0/1/2 mirror [`TraceMode`]; 3 means "not yet resolved from
/// the environment".
static MODE: AtomicU8 = AtomicU8::new(3);

/// Current trace mode (resolved from `ENW_TRACE` on first call; override
/// with [`set_mode`]).
pub fn mode() -> TraceMode {
    match MODE.load(Ordering::Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Summary,
        2 => TraceMode::Full,
        _ => {
            let m = std::env::var("ENW_TRACE")
                .map(|v| TraceMode::from_env_str(&v))
                .unwrap_or(TraceMode::Off);
            set_mode(m);
            m
        }
    }
}

/// Overrides the trace mode for the whole process (tests, experiment
/// binaries). Takes effect immediately on all threads.
pub fn set_mode(m: TraceMode) {
    let v = match m {
        TraceMode::Off => 0,
        TraceMode::Summary => 1,
        TraceMode::Full => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// True when anything at all is being recorded.
#[inline]
pub fn enabled() -> bool {
    !matches!(mode(), TraceMode::Off)
}

/// The virtual clock value read by [`now_ns`] when no external time
/// source is installed.
static VIRTUAL_NOW: AtomicU64 = AtomicU64::new(0);

/// An installed external time source (bench-only; see module docs).
static TIME_SOURCE: OnceLock<fn() -> u64> = OnceLock::new();

/// Sets the virtual trace clock to an absolute nanosecond value. The
/// serving scheduler calls this as its event loop advances, so span
/// durations inside the runtime are virtual-time deltas.
pub fn set_virtual_ns(ns: u64) {
    VIRTUAL_NOW.store(ns, Ordering::Relaxed);
}

/// Installs a process-wide external time source (e.g. a monotonic clock
/// in `enw-bench`). First caller wins; returns `false` if a source was
/// already installed. Deterministic runs never install one.
pub fn install_time_source(f: fn() -> u64) -> bool {
    TIME_SOURCE.set(f).is_ok()
}

/// Current trace-clock reading in nanoseconds: the installed external
/// source if any, else the virtual counter.
pub fn now_ns() -> u64 {
    match TIME_SOURCE.get() {
        Some(f) => f(),
        None => VIRTUAL_NOW.load(Ordering::Relaxed),
    }
}

/// A snapshot of process-wide heap-allocation counters, as reported by an
/// installed [alloc source](install_alloc_source).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations since process start.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

/// An installed allocation-counter source (bench-only; the counting
/// `#[global_allocator]` lives in `enw-bench`).
static ALLOC_SOURCE: OnceLock<fn() -> (u64, u64)> = OnceLock::new();

/// Installs a process-wide allocation-counter source returning
/// `(allocs, bytes)` since process start. Like [`install_time_source`]
/// this is a profiling convenience outside the determinism contract:
/// counts are rendered in [`TraceReport::summary_table`] but never stored
/// in a [`TraceReport`]. First caller wins; returns `false` if a source
/// was already installed.
pub fn install_alloc_source(f: fn() -> (u64, u64)) -> bool {
    ALLOC_SOURCE.set(f).is_ok()
}

/// Current allocation counters, or `None` when no source is installed
/// (the default — deterministic runs never install one).
pub fn alloc_stats() -> Option<AllocStats> {
    ALLOC_SOURCE.get().map(|f| {
        let (allocs, bytes) = f();
        AllocStats { allocs, bytes }
    })
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Recorder state is process-global; tests that touch it serialize
    /// on this lock so `cargo test`'s parallel runner cannot interleave
    /// them.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_env_values() {
        assert_eq!(TraceMode::from_env_str("summary"), TraceMode::Summary);
        assert_eq!(TraceMode::from_env_str(" full "), TraceMode::Full);
        assert_eq!(TraceMode::from_env_str("off"), TraceMode::Off);
        assert_eq!(TraceMode::from_env_str("nonsense"), TraceMode::Off);
        assert_eq!(TraceMode::Summary.as_str(), "summary");
    }

    #[test]
    fn set_mode_round_trips() {
        let _guard = test_lock::hold();
        let before = mode();
        for m in [TraceMode::Summary, TraceMode::Full, TraceMode::Off] {
            set_mode(m);
            assert_eq!(mode(), m);
        }
        set_mode(before);
    }

    #[test]
    fn virtual_clock_reads_back() {
        let _guard = test_lock::hold();
        set_virtual_ns(123);
        assert_eq!(now_ns(), 123);
        set_virtual_ns(0);
    }

    #[test]
    fn alloc_source_installs_once_and_feeds_the_summary() {
        let _guard = test_lock::hold();
        assert_eq!(alloc_stats(), None, "no source installed yet");
        assert!(install_alloc_source(|| (7, 4096)));
        assert!(!install_alloc_source(|| (0, 0)), "second install must be refused");
        assert_eq!(alloc_stats(), Some(AllocStats { allocs: 7, bytes: 4096 }));
        // The report itself never stores the counters; only the rendered
        // console table shows them.
        let r = TraceReport::default();
        let table = r.summary_table();
        assert!(table.contains("allocator"), "{table}");
        assert!(table.contains("4096"), "{table}");
    }

    #[test]
    fn external_time_source_installs_once() {
        // The installed source mirrors the virtual counter so the other
        // tests in this process keep their clock semantics.
        let first = install_time_source(|| VIRTUAL_NOW.load(Ordering::Relaxed));
        let second = install_time_source(|| 0);
        assert!(first);
        assert!(!second, "second install must be refused");
    }
}
