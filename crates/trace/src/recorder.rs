//! Thread-local recorders with commutative merge-on-join.
//!
//! Every thread records into its own private [`Sink`]; when a thread
//! exits — which for `enw-parallel` workers is exactly when the scoped
//! pool joins them — its sink drains into the process-wide one. All
//! merged quantities are order-independent (`u64` sums, histogram bucket
//! adds, event lists canonicalized by sorting), so the global totals are
//! identical for any worker count and any join order. [`take_report`]
//! drains the calling thread's sink plus the global one; call it from
//! the thread that owns the workload (experiment binaries, the serving
//! loop) after all parallel sections have joined.

use crate::histogram::Histogram;
use crate::report::{self, TraceEvent, TraceReport};
use crate::{enabled, mode, now_ns, TraceMode};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Aggregate statistics of one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total elapsed trace-clock nanoseconds across entries.
    pub clock_ns: u64,
    /// Total explicit work units attributed via [`Span::add_work`] /
    /// [`record_span`] (element counts, modeled nanoseconds — the
    /// deterministic attribution currency).
    pub work: u64,
    /// Total bytes the instrumented kernel read, attributed via
    /// [`Span::add_io`] / [`record_span_io`]. A pure function of the
    /// operand shapes (rows × cols × element size), never of the memory
    /// system, so it is deterministic like `work`.
    pub bytes_read: u64,
    /// Total bytes the instrumented kernel wrote (see `bytes_read`).
    pub bytes_written: u64,
}

/// One recorder's worth of data (also the global merge target).
#[derive(Debug, Default)]
pub(crate) struct Sink {
    pub(crate) spans: BTreeMap<&'static str, SpanStat>,
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) values: BTreeMap<&'static str, Histogram>,
    pub(crate) events: Vec<TraceEvent>,
}

impl Sink {
    const fn empty() -> Self {
        Sink {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            values: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Commutative merge: sums, bucket adds, event append.
    fn merge_into(self, target: &mut Sink) {
        for (name, s) in self.spans {
            let t = target.spans.entry(name).or_default();
            t.count += s.count;
            t.clock_ns += s.clock_ns;
            t.work += s.work;
            t.bytes_read += s.bytes_read;
            t.bytes_written += s.bytes_written;
        }
        for (name, v) in self.counters {
            *target.counters.entry(name).or_default() += v;
        }
        for (name, h) in self.values {
            target.values.entry(name).or_default().merge(&h);
        }
        target.events.extend(self.events);
    }
}

/// The process-wide sink threads merge into on exit.
static GLOBAL: Mutex<Sink> = Mutex::new(Sink::empty());

/// Thread-local sink wrapper whose drop is the merge-on-join step.
struct LocalSink(Sink);

impl Drop for LocalSink {
    fn drop(&mut self) {
        let sink = std::mem::take(&mut self.0);
        let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        sink.merge_into(&mut global);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSink> = const { RefCell::new(LocalSink(Sink::empty())) };
}

/// Runs `f` against this thread's sink; silently a no-op during thread
/// teardown (after the thread-local has been destroyed).
fn with_local(f: impl FnOnce(&mut Sink)) {
    let _ = LOCAL.try_with(|l| {
        if let Ok(mut guard) = l.try_borrow_mut() {
            f(&mut guard.0);
        }
    });
}

/// A scoped span guard: records count / elapsed trace-clock time /
/// attributed work when dropped. Inert (free) when tracing is off.
#[must_use = "a span records on drop; binding it to _ discards the scope"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    work: Cell<u64>,
    bytes_read: Cell<u64>,
    bytes_written: Cell<u64>,
    live: bool,
}

impl Span {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Attributes `units` of deterministic work (element counts, modeled
    /// nanoseconds) to this span entry.
    pub fn add_work(&self, units: u64) {
        if self.live {
            self.work.set(self.work.get().saturating_add(units));
        }
    }

    /// Attributes deterministic data traffic to this span entry: bytes
    /// the kernel read from its operands and bytes it wrote to its
    /// outputs, computed from the operand shapes (so reruns record the
    /// same figures bit for bit).
    pub fn add_io(&self, read: u64, written: u64) {
        if self.live {
            self.bytes_read.set(self.bytes_read.get().saturating_add(read));
            self.bytes_written.set(self.bytes_written.get().saturating_add(written));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let work = self.work.get();
        let (bytes_read, bytes_written) = (self.bytes_read.get(), self.bytes_written.get());
        let full = mode() == TraceMode::Full;
        let (name, start_ns) = (self.name, self.start_ns);
        with_local(|sink| {
            let stat = sink.spans.entry(name).or_default();
            stat.count += 1;
            stat.clock_ns += dur_ns;
            stat.work += work;
            stat.bytes_read += bytes_read;
            stat.bytes_written += bytes_written;
            if full {
                sink.events.push(TraceEvent { name, start_ns, dur_ns, work });
            }
        });
    }
}

/// Opens a named span; the returned guard records when it drops.
pub fn span(name: &'static str) -> Span {
    let live = enabled();
    Span {
        name,
        start_ns: if live { now_ns() } else { 0 },
        work: Cell::new(0),
        bytes_read: Cell::new(0),
        bytes_written: Cell::new(0),
        live,
    }
}

/// One-shot span: records a single entry of `name` carrying `work`
/// units and no clock time. The cheap form kernel hot paths use.
pub fn record_span(name: &'static str, work: u64) {
    record_span_io(name, work, 0, 0);
}

/// One-shot span carrying `work` units plus deterministic byte traffic
/// (`bytes_read` from operands, `bytes_written` to outputs). The figures
/// must derive from operand shapes only, so the recorded traffic — and
/// the arithmetic-intensity column in the summary table — is identical
/// on every rerun.
pub fn record_span_io(name: &'static str, work: u64, bytes_read: u64, bytes_written: u64) {
    if !enabled() {
        return;
    }
    let full = mode() == TraceMode::Full;
    let start_ns = if full { now_ns() } else { 0 };
    with_local(|sink| {
        let stat = sink.spans.entry(name).or_default();
        stat.count += 1;
        stat.work += work;
        stat.bytes_read += bytes_read;
        stat.bytes_written += bytes_written;
        if full {
            sink.events.push(TraceEvent { name, start_ns, dur_ns: 0, work });
        }
    });
}

/// Adds `v` to the named monotone counter.
pub fn counter_add(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_local(|sink| *sink.counters.entry(name).or_default() += v);
}

/// Records `v` into the named fixed-bucket histogram.
pub fn record_value(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_local(|sink| sink.values.entry(name).or_default().record(v));
}

/// Merges the calling thread's sink into the global one.
///
/// Threads that exit do this automatically (merge-on-join). Threads that
/// *never* exit — the persistent `enw-parallel` pool workers — must call
/// this explicitly when a parallel job finishes, or their recordings
/// would sit invisible in thread-local state forever. The merge is
/// commutative (`u64` sums, histogram bucket adds, sorted events), so
/// flushing per job instead of per thread-lifetime changes nothing in
/// the totals.
pub fn flush_local() {
    flush_thread();
}

fn flush_thread() {
    let _ = LOCAL.try_with(|l| {
        if let Ok(mut guard) = l.try_borrow_mut() {
            let sink = std::mem::take(&mut guard.0);
            let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
            sink.merge_into(&mut global);
        }
    });
}

/// Drains everything recorded so far (this thread + all joined threads)
/// into a [`TraceReport`] and resets the recorders.
pub fn take_report() -> TraceReport {
    flush_thread();
    let sink = {
        let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *global)
    };
    report::build(mode(), sink)
}

/// Discards everything recorded so far (this thread + joined threads).
pub fn reset() {
    flush_thread();
    let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    *global = Sink::empty();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_mode, set_virtual_ns, test_lock};

    fn with_summary_mode<R>(f: impl FnOnce() -> R) -> R {
        let _guard = test_lock::hold();
        set_mode(TraceMode::Summary);
        reset();
        let r = f();
        set_mode(TraceMode::Off);
        r
    }

    #[test]
    fn spans_counters_and_values_round_trip() {
        let report = with_summary_mode(|| {
            set_virtual_ns(100);
            {
                let s = span("test/alpha");
                s.add_work(40);
                set_virtual_ns(250);
            }
            record_span("test/beta", 7);
            record_span("test/beta", 3);
            counter_add("test.count", 5);
            counter_add("test.count", 6);
            record_value("test.values", 42);
            set_virtual_ns(0);
            take_report()
        });
        let alpha = report.spans.iter().find(|s| s.name == "test/alpha").copied();
        assert_eq!(alpha, report.spans.first().copied(), "spans sorted by name");
        let alpha = alpha.unwrap_or_default();
        assert_eq!(alpha.count, 1);
        assert_eq!(alpha.clock_ns, 150, "span measures the virtual-clock delta");
        assert_eq!(alpha.work, 40);
        let beta = report.spans.iter().find(|s| s.name == "test/beta").copied();
        assert_eq!(beta.map(|s| (s.count, s.work)), Some((2, 10)));
        assert_eq!(report.counters, vec![crate::CounterEntry { name: "test.count", value: 11 }]);
        assert_eq!(report.histograms.len(), 1);
        assert_eq!(report.histograms.first().map(|h| h.count), Some(1));
    }

    #[test]
    fn span_io_accumulates_and_merges() {
        let report = with_summary_mode(|| {
            {
                let s = span("test/io");
                s.add_work(64);
                s.add_io(1024, 256);
                s.add_io(1024, 256);
            }
            record_span_io("test/io", 64, 512, 128);
            // Worker-thread recordings of the same span must merge in.
            // Join explicitly: the scope's implicit wait can return
            // before the TLS destructor that performs the merge has run.
            std::thread::scope(|scope| {
                let h = scope.spawn(|| record_span_io("test/io", 0, 100, 10));
                h.join().expect("worker panicked");
            });
            take_report()
        });
        let io = report.spans.iter().find(|s| s.name == "test/io").copied().unwrap_or_default();
        assert_eq!(io.count, 3);
        assert_eq!(io.work, 128);
        assert_eq!(io.bytes_read, 1024 + 1024 + 512 + 100);
        assert_eq!(io.bytes_written, 256 + 256 + 128 + 10);
    }

    #[test]
    fn flush_local_is_idempotent_and_preserves_totals() {
        let report = with_summary_mode(|| {
            record_span("test/flush", 5);
            flush_local();
            flush_local(); // nothing left locally; must not double-count
            record_span("test/flush", 7);
            take_report()
        });
        let f = report.spans.iter().find(|s| s.name == "test/flush").copied();
        assert_eq!(f.map(|s| (s.count, s.work)), Some((2, 12)));
    }

    #[test]
    fn off_mode_records_nothing() {
        let _guard = test_lock::hold();
        set_mode(TraceMode::Off);
        reset();
        {
            let s = span("test/ignored");
            s.add_work(10);
            s.add_io(10, 10);
        }
        record_span("test/ignored", 1);
        record_span_io("test/ignored", 1, 1, 1);
        counter_add("test.ignored", 1);
        record_value("test.ignored", 1);
        let report = take_report();
        assert!(report.is_empty(), "off mode must record nothing: {report:?}");
    }

    #[test]
    fn take_report_resets_state() {
        let first = with_summary_mode(|| {
            record_span("test/reset", 1);
            let first = take_report();
            let second = take_report();
            assert!(second.is_empty(), "take_report must drain");
            first
        });
        assert_eq!(first.spans.len(), 1);
    }

    #[test]
    fn worker_thread_sinks_merge_on_join() {
        let report = with_summary_mode(|| {
            std::thread::scope(|s| {
                // Join each handle explicitly: the scope's implicit wait
                // returns when the closures finish, which can be before
                // the TLS destructors that perform the merge have run.
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        s.spawn(|| {
                            record_span("test/worker", 10);
                            counter_add("test.worker", 1);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("worker panicked");
                }
            });
            take_report()
        });
        let w = report.spans.iter().find(|s| s.name == "test/worker").copied();
        assert_eq!(w.map(|s| (s.count, s.work)), Some((4, 40)));
        assert_eq!(report.counters.first().map(|c| c.value), Some(4));
    }

    #[test]
    fn full_mode_collects_sorted_events() {
        let _guard = test_lock::hold();
        set_mode(TraceMode::Full);
        reset();
        set_virtual_ns(500);
        record_span("test/z-late", 1);
        set_virtual_ns(900);
        record_span("test/a-later", 2);
        set_virtual_ns(0);
        let report = take_report();
        set_mode(TraceMode::Off);
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events.first().map(|e| e.start_ns), Some(500));
        assert_eq!(report.events.last().map(|e| e.name), Some("test/a-later"));
    }
}
