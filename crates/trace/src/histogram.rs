//! Fixed-bucket histograms of `u64` values (latencies in nanoseconds,
//! batch sizes, queue depths).
//!
//! Bucket boundaries are a pure function of the value — never of the
//! data seen so far — so two histograms fed the same multiset of values
//! hold identical bucket counts regardless of insertion order or thread
//! interleaving, and merging is element-wise `u64` addition. That is the
//! property the workspace's determinism contract needs; it is what makes
//! the serving runtime's percentiles bit-identical at any `ENW_THREADS`.
//!
//! Layout: values below [`LINEAR_MAX`] get one exact bucket each; larger
//! values land in log₂ octaves split into [`SUB_BUCKETS`] linear
//! sub-buckets, bounding the relative quantization error by
//! `1/SUB_BUCKETS` (≈3%). Exact `min`/`max`/`sum` are tracked alongside,
//! so extreme quantiles report the true extremes.

/// Values below this get an exact, width-1 bucket.
pub const LINEAR_MAX: u64 = 64;

/// Linear sub-buckets per octave above the exact range.
pub const SUB_BUCKETS: usize = 32;

/// First octave index handled by the log region (`2^6 == LINEAR_MAX`).
const FIRST_OCTAVE: u32 = 6;

/// Total bucket count: 64 exact + 58 octaves × 32 sub-buckets.
pub const BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE as usize) * SUB_BUCKETS;

/// A fixed-bucket histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index for a value (total order preserving).
    fn index(v: u64) -> usize {
        if v < LINEAR_MAX {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros(); // >= FIRST_OCTAVE
        let shift = octave - 5; // keep the top 5 bits after the leading 1
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        LINEAR_MAX as usize + (octave - FIRST_OCTAVE) as usize * SUB_BUCKETS + sub
    }

    /// Largest value mapping to bucket `idx` (inclusive).
    fn upper_bound(idx: usize) -> u64 {
        if idx < LINEAR_MAX as usize {
            return idx as u64;
        }
        let rel = idx - LINEAR_MAX as usize;
        let octave = FIRST_OCTAVE + (rel / SUB_BUCKETS) as u32;
        let sub = (rel % SUB_BUCKETS) as u64;
        let shift = octave - 5;
        let lower = (1u64 << octave) | (sub << shift);
        lower + ((1u64 << shift) - 1)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index(v)] += n;
        self.total += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded values, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// Nearest-rank percentile: the upper bound of the bucket holding the
    /// `ceil(pct/100 · count)`-th smallest value, clamped to the exact
    /// observed extremes. 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `(0, 100]`.
    pub fn percentile(&self, pct: f64) -> u64 {
        assert!(pct > 0.0 && pct <= 100.0, "percentile must be in (0, 100]");
        if self.total == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Element-wise merge (the commutative reduction used on join).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound_inclusive, count)`, in value
    /// order (the JSON export shape).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::upper_bound(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.percentile(50.0), 40);
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 63);
        assert_eq!(h.mean(), (10 + 20 + 30 + 40 + 50 + 60 + 63) / 7);
    }

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < 1 << 40 {
            let idx = Histogram::index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            assert!(idx < BUCKETS);
            assert!(Histogram::upper_bound(idx) >= v, "upper bound below value at {v}");
            prev = idx;
            v = v * 2 + 1;
        }
        assert!(Histogram::index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantization_error_is_bounded() {
        for &v in &[100u64, 999, 12_345, 1_000_000, 123_456_789, 9_876_543_210] {
            let ub = Histogram::upper_bound(Histogram::index(v));
            assert!(ub >= v);
            let err = (ub - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-12, "error {err} at {v}");
        }
    }

    #[test]
    fn percentiles_clamp_to_observed_extremes() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.percentile(1.0), 1_000_000);
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let values: Vec<u64> = (0..500).map(|i| (i * i * 37) % 100_000).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                left.record(v)
            } else {
                right.record(v)
            }
        }
        let mut merged = right.clone();
        merged.merge(&left);
        assert_eq!(merged, whole, "merge must be order-independent and lossless");
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_domain_is_checked() {
        Histogram::new().percentile(0.0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(777, 5);
        let mut b = Histogram::new();
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a, b);
        a.record_n(1, 0);
        assert_eq!(a.count(), 5, "zero-count record is a no-op");
    }
}
