//! The drained form of a recording: sorted aggregates plus (in full
//! mode) a chrome-trace-compatible event array.
//!
//! Everything in a [`TraceReport`] is deterministically ordered — spans,
//! counters, and histograms by name (the recorder's `BTreeMap` order),
//! events by `(start_ns, name, dur_ns, work)` — so `to_json()` output is
//! byte-identical whenever the recorded totals are, which is what the
//! trace determinism tests compare across `ENW_THREADS` settings.

use crate::recorder::{Sink, SpanStat};
use crate::TraceMode;

/// Aggregate entry for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanEntry {
    /// Span name (convention: `lane/stage`).
    pub name: &'static str,
    /// Times entered.
    pub count: u64,
    /// Total trace-clock nanoseconds.
    pub clock_ns: u64,
    /// Total attributed work units.
    pub work: u64,
    /// Total bytes read from operands (shape-derived, deterministic).
    pub bytes_read: u64,
    /// Total bytes written to outputs (shape-derived, deterministic).
    pub bytes_written: u64,
}

impl SpanEntry {
    /// Total bytes moved (reads plus writes) by this span.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read.saturating_add(self.bytes_written)
    }

    /// Arithmetic intensity: attributed work units per byte moved, or
    /// `None` when the span recorded no traffic. The optimization target
    /// the kernel rework steers by — raising it means more compute per
    /// byte of memory traffic.
    pub fn work_per_byte(&self) -> Option<f64> {
        let bytes = self.bytes_moved();
        if bytes == 0 {
            None
        } else {
            Some(self.work as f64 / bytes as f64)
        }
    }
}

/// One named monotone counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterEntry {
    /// Counter name.
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// Summary of one named histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistEntry {
    /// Histogram name.
    pub name: &'static str,
    /// Recorded values.
    pub count: u64,
    /// Exact observed minimum.
    pub min: u64,
    /// Exact observed maximum.
    pub max: u64,
    /// Mean (rounded down).
    pub mean: u64,
    /// Nearest-rank 50th percentile.
    pub p50: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(upper_bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// One full-mode event (a completed span entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Trace-clock time at entry.
    pub start_ns: u64,
    /// Elapsed trace-clock nanoseconds.
    pub dur_ns: u64,
    /// Work attributed to this entry.
    pub work: u64,
}

/// Everything one recording produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Mode the recording ran under (`off`/`summary`/`full`).
    pub mode: &'static str,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanEntry>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistEntry>,
    /// Full-mode events in canonical order (empty in summary mode).
    pub events: Vec<TraceEvent>,
}

/// Builds the report from a drained sink (crate-internal).
pub(crate) fn build(mode: TraceMode, sink: Sink) -> TraceReport {
    let spans: Vec<SpanEntry> = sink
        .spans
        .iter()
        .map(|(&name, s)| {
            let SpanStat { count, clock_ns, work, bytes_read, bytes_written } = *s;
            SpanEntry { name, count, clock_ns, work, bytes_read, bytes_written }
        })
        .collect();
    let counters: Vec<CounterEntry> =
        sink.counters.iter().map(|(&name, &value)| CounterEntry { name, value }).collect();
    let histograms: Vec<HistEntry> = sink
        .values
        .iter()
        .map(|(&name, h)| HistEntry {
            name,
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
            buckets: h.nonzero_buckets(),
        })
        .collect();
    let mut events = sink.events;
    events.sort_by(|a, b| {
        (a.start_ns, a.name, a.dur_ns, a.work).cmp(&(b.start_ns, b.name, b.dur_ns, b.work))
    });
    TraceReport { mode: mode.as_str(), spans, counters, histograms, events }
}

impl TraceReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Total work units across all spans.
    pub fn total_work(&self) -> u64 {
        self.spans.iter().map(|s| s.work).sum()
    }

    /// Total trace-clock nanoseconds across all spans.
    pub fn total_clock_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.clock_ns).sum()
    }

    /// Total bytes moved (reads plus writes) across all spans.
    pub fn total_bytes_moved(&self) -> u64 {
        self.spans.iter().map(|s| s.bytes_moved()).sum()
    }

    /// Chrome-trace-compatible JSON (load in `chrome://tracing` or
    /// Perfetto): a `traceEvents` array of complete (`"ph": "X"`) events
    /// plus a `summary` object with the aggregates. In summary mode the
    /// event array is synthesized from span totals laid end to end.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"displayTimeUnit\": \"ns\",\n");
        out.push_str(&format!("  \"otherData\": {{\"mode\": \"{}\"}},\n", self.mode));
        out.push_str("  \"summary\": {\n    \"spans\": [\n");
        let total_work = self.total_work().max(1);
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"count\": {}, \"clock_ns\": {}, \"work\": {}, \"work_share\": {:.6}, \"bytes_read\": {}, \"bytes_written\": {}}}{}\n",
                s.name,
                s.count,
                s.clock_ns,
                s.work,
                s.work as f64 / total_work as f64,
                s.bytes_read,
                s.bytes_written,
                comma(i, self.spans.len())
            ));
        }
        out.push_str("    ],\n    \"counters\": [\n");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"value\": {}}}{}\n",
                c.name,
                c.value,
                comma(i, self.counters.len())
            ));
        }
        out.push_str("    ],\n    \"histograms\": [\n");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{}\n",
                h.name,
                h.count,
                h.min,
                h.max,
                h.mean,
                h.p50,
                h.p95,
                h.p99,
                comma(i, self.histograms.len())
            ));
        }
        out.push_str("    ]\n  },\n  \"traceEvents\": [\n");
        if self.events.is_empty() {
            // Summary mode: synthesize one complete event per span so the
            // file still renders as a timeline.
            let mut ts = 0u64;
            for (i, s) in self.spans.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"count\": {}, \"work\": {}}}}}{}\n",
                    s.name,
                    ts as f64 / 1e3,
                    s.clock_ns as f64 / 1e3,
                    s.count,
                    s.work,
                    comma(i, self.spans.len())
                ));
                ts += s.clock_ns;
            }
        } else {
            for (i, e) in self.events.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"work\": {}}}}}{}\n",
                    e.name,
                    e.start_ns as f64 / 1e3,
                    e.dur_ns as f64 / 1e3,
                    e.work,
                    comma(i, self.events.len())
                ));
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Aligned text summary (the `ENW_TRACE=summary` console rendering).
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            let total_work = self.total_work().max(1);
            out.push_str(&format!(
                "{:<32} {:>10} {:>14} {:>14} {:>7} {:>12} {:>12} {:>9}\n",
                "span", "count", "clock_ns", "work", "work%", "bytes_rd", "bytes_wr", "work/B"
            ));
            for s in &self.spans {
                let intensity = match s.work_per_byte() {
                    Some(i) => format!("{i:.3}"),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "{:<32} {:>10} {:>14} {:>14} {:>6.1}% {:>12} {:>12} {:>9}\n",
                    s.name,
                    s.count,
                    s.clock_ns,
                    s.work,
                    100.0 * s.work as f64 / total_work as f64,
                    s.bytes_read,
                    s.bytes_written,
                    intensity
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<32} {:>14}\n", "counter", "value"));
            for c in &self.counters {
                out.push_str(&format!("{:<32} {:>14}\n", c.name, c.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n{:<32} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "histogram", "count", "p50", "p95", "p99", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<32} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    h.name, h.count, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        // Allocation counters are read at render time from the installed
        // source (if any) rather than stored in the report, so report
        // bytes stay deterministic while the console view shows them.
        if let Some(a) = crate::alloc_stats() {
            out.push_str(&format!(
                "\n{:<32} {:>14} allocations {:>14} bytes\n",
                "allocator", a.allocs, a.bytes
            ));
        }
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{counter_add, record_value, reset, span, take_report};
    use crate::{set_mode, set_virtual_ns, test_lock};

    fn sample_report(mode: TraceMode) -> TraceReport {
        let _guard = test_lock::hold();
        set_mode(mode);
        reset();
        set_virtual_ns(10);
        {
            let s = span("report/stage-a");
            s.add_work(30);
            set_virtual_ns(40);
        }
        crate::record_span_io("report/stage-b", 70, 560, 140);
        counter_add("report.count", 9);
        record_value("report.lat", 1234);
        set_virtual_ns(0);
        let r = take_report();
        set_mode(TraceMode::Off);
        r
    }

    #[test]
    fn json_has_chrome_trace_shape_and_summary() {
        let r = sample_report(TraceMode::Summary);
        let json = r.to_json();
        assert!(json.contains("\"traceEvents\""), "chrome-trace key missing");
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"report/stage-a\""));
        assert!(json.contains("\"work_share\": 0.300000"));
        assert!(json.contains("\"bytes_read\": 560"), "{json}");
        assert!(json.contains("\"bytes_written\": 140"), "{json}");
        assert!(json.contains("\"p50\": 1234") || json.contains("\"p50\": 12"), "{json}");
        assert_eq!(r.total_work(), 100);
        assert_eq!(r.total_clock_ns(), 30);
        assert_eq!(r.total_bytes_moved(), 700);
    }

    #[test]
    fn summary_table_reports_bytes_and_intensity() {
        let r = sample_report(TraceMode::Summary);
        let t = r.summary_table();
        assert!(t.contains("bytes_rd"), "{t}");
        assert!(t.contains("560"), "{t}");
        assert!(t.contains("140"), "{t}");
        // stage-b: 70 work over 700 bytes = 0.100 work/B; stage-a moved
        // no bytes and must render a dash, not a division by zero.
        assert!(t.contains("0.100"), "{t}");
        assert!(t.contains(" -\n") || t.contains(" - "), "{t}");
        let b = r.spans.iter().find(|s| s.name == "report/stage-b").unwrap();
        assert_eq!(b.bytes_moved(), 700);
        assert_eq!(b.work_per_byte(), Some(0.1));
        let a = r.spans.iter().find(|s| s.name == "report/stage-a").unwrap();
        assert_eq!(a.work_per_byte(), None);
    }

    #[test]
    fn full_mode_emits_real_events() {
        let r = sample_report(TraceMode::Full);
        assert_eq!(r.events.len(), 2);
        let json = r.to_json();
        assert!(json.contains("\"ts\": 0.010") || json.contains("\"ts\": 0.04"), "{json}");
    }

    #[test]
    fn summary_table_lists_everything() {
        let r = sample_report(TraceMode::Summary);
        let t = r.summary_table();
        assert!(t.contains("report/stage-a"));
        assert!(t.contains("report.count"));
        assert!(t.contains("report.lat"));
        assert!(t.contains("30.0%"), "{t}");
    }

    #[test]
    fn empty_report_is_empty() {
        let r = TraceReport::default();
        assert!(r.is_empty());
        let json = r.to_json();
        assert!(json.contains("\"traceEvents\""));
    }
}
