//! The unified tunable-config API: typed parameter spaces over the
//! workspace's hardware/workload configuration structs.
//!
//! Every simulator crate exposes a configuration struct with a validating
//! builder; this module adds the *search-facing* view of those structs.
//! A [`Tunable`] type declares a [`ParamSpace`] — an ordered list of
//! named, bounded axes — and maps itself to and from a [`Point`] in that
//! space. The DSE engine (`enw-dse`) enumerates and locally searches
//! points without knowing anything about the concrete config type.
//!
//! # Conventions (see DESIGN.md, "Tunable configs")
//!
//! * Axis names are `snake_case` and match the struct field they tune
//!   (`tile_rows`, not `rows`); derived axes name the family parameter
//!   (`bottom_width` for a one-hidden-layer bottom MLP).
//! * [`Tunable::space`] declares axes in struct-field order; the order is
//!   part of the API — [`Tunable::encode`] emits entries in exactly that
//!   order, so [`Point::key`] is a stable identity for hashing, sorting
//!   and JSON output. Never build a point by iterating a hash-ordered
//!   container (enforced by lint ENW-A005).
//! * [`Tunable::decode`] is *total on in-bounds points*: bounds are
//!   validated here, cross-field constraints by the crate's own builder,
//!   and both failure paths return typed errors through [`EnwError`].
//!   `step` is search granularity (grid spacing, neighbor stride), not a
//!   decode constraint — off-step in-bounds values decode fine.
//! * Lossy families are allowed: a config whose shape exceeds the family
//!   (say a three-layer bottom MLP) encodes to its nearest family member.
//!   The invariant property tests assert is `decode(encode(c)) == c` for
//!   every `c = decode(p)` — the family is closed under round-trip.

use crate::error::EnwError;
use enw_cam::array::TcamConfig;
use enw_crossbar::noise::AnalogNoise;
use enw_crossbar::tile::{TileConfig, UpdateScheme};
use enw_mann::embedding::EmbeddingConfig;
use enw_nn::mlp::SgdConfig;
use enw_numerics::rng::Rng64;
use enw_recsys::model::{Interaction, RecModelConfig};
use enw_serve::policy::BatchPolicy;
use enw_xmann::arch::XmannConfig;
use std::error::Error;
use std::fmt;

/// Tolerance for floating-point bounds checks: decoded values come back
/// through `f32` round-trips, so exact comparison would reject points the
/// encoder itself produced.
const REAL_EPS: f64 = 1e-9;

/// Relative slack for real-axis bounds checks: a config that stores an
/// axis as `f32` re-encodes the bound itself a few `f32` ULPs off (e.g.
/// `f64::from(0.2f32) > 0.2`), so bounds get `|bound| * F32_SLACK` of
/// headroom — orders of magnitude below any axis step.
const F32_SLACK: f64 = 1e-6;

/// The domain of one tunable axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisDomain {
    /// Integers `min..=max`; `step` is the grid/neighbor stride.
    Int {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
        /// Search stride (≥ 1); not a decode constraint.
        step: i64,
    },
    /// Reals `min..=max`; `step` is the grid/neighbor stride.
    Real {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
        /// Search stride (> 0); not a decode constraint.
        step: f64,
    },
    /// One of a fixed, ordered set of labels.
    Choice {
        /// The legal labels, in neighbor order.
        options: &'static [&'static str],
    },
}

/// One named axis of a [`ParamSpace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisSpec {
    /// Axis name (`snake_case`, matching the tuned field).
    pub name: &'static str,
    /// Value domain.
    pub domain: AxisDomain,
}

/// A concrete value on one axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisValue {
    /// Value on an [`AxisDomain::Int`] axis.
    Int(i64),
    /// Value on an [`AxisDomain::Real`] axis.
    Real(f64),
    /// Value on an [`AxisDomain::Choice`] axis.
    Choice(&'static str),
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Int(v) => write!(f, "{v}"),
            AxisValue::Real(v) => write!(f, "{v}"),
            AxisValue::Choice(v) => write!(f, "{v}"),
        }
    }
}

/// A configuration as a point in its parameter space: ordered
/// `(axis, value)` entries in the space's axis-declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    entries: Vec<(&'static str, AxisValue)>,
}

impl Point {
    /// A point from explicit entries (normally produced by
    /// [`Tunable::encode`] or the [`ParamSpace`] generators, which emit
    /// entries in axis order).
    pub fn new(entries: Vec<(&'static str, AxisValue)>) -> Self {
        Point { entries }
    }

    /// The entries, in encode order.
    pub fn entries(&self) -> &[(&'static str, AxisValue)] {
        &self.entries
    }

    /// The value on `axis`, if present.
    pub fn get(&self, axis: &str) -> Option<AxisValue> {
        self.entries.iter().find(|(n, _)| *n == axis).map(|&(_, v)| v)
    }

    /// The integer value on `axis`.
    pub fn int(&self, axis: &'static str) -> Result<i64, TunableError> {
        match self.get(axis) {
            Some(AxisValue::Int(v)) => Ok(v),
            Some(_) => Err(TunableError::WrongKind { axis }),
            None => Err(TunableError::MissingAxis { axis }),
        }
    }

    /// The real value on `axis`.
    pub fn real(&self, axis: &'static str) -> Result<f64, TunableError> {
        match self.get(axis) {
            Some(AxisValue::Real(v)) => Ok(v),
            Some(_) => Err(TunableError::WrongKind { axis }),
            None => Err(TunableError::MissingAxis { axis }),
        }
    }

    /// The choice label on `axis`.
    pub fn choice(&self, axis: &'static str) -> Result<&'static str, TunableError> {
        match self.get(axis) {
            Some(AxisValue::Choice(v)) => Ok(v),
            Some(_) => Err(TunableError::WrongKind { axis }),
            None => Err(TunableError::MissingAxis { axis }),
        }
    }

    /// This point with the value on `axis` replaced.
    pub fn with(&self, axis: &'static str, value: AxisValue) -> Point {
        let mut entries = self.entries.clone();
        if let Some(e) = entries.iter_mut().find(|(n, _)| *n == axis) {
            e.1 = value;
        } else {
            entries.push((axis, value));
        }
        Point { entries }
    }

    /// A stable textual identity: `axis=value` pairs joined with `,` in
    /// encode order. Two equal points always render the same key, so it
    /// is safe to sort, dedup and emit to JSON.
    pub fn key(&self) -> String {
        let mut out = String::new();
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(name);
            out.push('=');
            out.push_str(&value.to_string());
        }
        out
    }
}

/// Why a point could not be interpreted in a parameter space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TunableError {
    /// The point has no value for a declared axis.
    MissingAxis {
        /// The absent axis.
        axis: &'static str,
    },
    /// The point has a value for an axis the space does not declare.
    UnknownAxis {
        /// The extraneous axis.
        axis: &'static str,
    },
    /// The value's kind does not match the axis domain.
    WrongKind {
        /// The mismatched axis.
        axis: &'static str,
    },
    /// The value lies outside the axis bounds.
    OutOfBounds {
        /// The violated axis.
        axis: &'static str,
    },
}

impl fmt::Display for TunableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunableError::MissingAxis { axis } => write!(f, "missing axis {axis}"),
            TunableError::UnknownAxis { axis } => write!(f, "unknown axis {axis}"),
            TunableError::WrongKind { axis } => write!(f, "wrong value kind on axis {axis}"),
            TunableError::OutOfBounds { axis } => write!(f, "value out of bounds on axis {axis}"),
        }
    }
}

impl Error for TunableError {}

/// An ordered set of tunable axes.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    axes: Vec<AxisSpec>,
}

impl ParamSpace {
    /// A space from its axes, in declaration order.
    pub fn new(axes: Vec<AxisSpec>) -> Self {
        ParamSpace { axes }
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[AxisSpec] {
        &self.axes
    }

    /// Checks that `point` covers exactly this space's axes with
    /// in-bounds values of the right kind. Step alignment is *not*
    /// checked — see the module conventions.
    pub fn validate(&self, point: &Point) -> Result<(), TunableError> {
        for axis in &self.axes {
            let value =
                point.get(axis.name).ok_or(TunableError::MissingAxis { axis: axis.name })?;
            match (axis.domain, value) {
                (AxisDomain::Int { min, max, .. }, AxisValue::Int(v)) => {
                    if v < min || v > max {
                        return Err(TunableError::OutOfBounds { axis: axis.name });
                    }
                }
                (AxisDomain::Real { min, max, .. }, AxisValue::Real(v)) => {
                    let tol = |b: f64| REAL_EPS.max(b.abs() * F32_SLACK);
                    if !v.is_finite() || v < min - tol(min) || v > max + tol(max) {
                        return Err(TunableError::OutOfBounds { axis: axis.name });
                    }
                }
                (AxisDomain::Choice { options }, AxisValue::Choice(v)) => {
                    if !options.contains(&v) {
                        return Err(TunableError::OutOfBounds { axis: axis.name });
                    }
                }
                _ => return Err(TunableError::WrongKind { axis: axis.name }),
            }
        }
        for &(name, _) in point.entries() {
            if !self.axes.iter().any(|a| a.name == name) {
                return Err(TunableError::UnknownAxis { axis: name });
            }
        }
        Ok(())
    }

    /// Up to `levels` evenly spread on-step values per axis (all options
    /// for a choice axis), combined into the full Cartesian product in
    /// axis order — the first axis varies slowest. Deterministic.
    pub fn grid(&self, levels: usize) -> Vec<Point> {
        let levels = levels.max(2);
        let per_axis: Vec<Vec<AxisValue>> =
            self.axes.iter().map(|a| axis_levels(a.domain, levels)).collect();
        let mut points = vec![Vec::new()];
        for (axis, values) in self.axes.iter().zip(&per_axis) {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for stem in &points {
                for &v in values {
                    let mut entries: Vec<(&'static str, AxisValue)> = stem.clone();
                    entries.push((axis.name, v));
                    next.push(entries);
                }
            }
            points = next;
        }
        points.into_iter().map(Point::new).collect()
    }

    /// Every point one step away from `point` along exactly one axis
    /// (clamped in-bounds; a choice axis moves to adjacent options). The
    /// order — axis by axis, decrement before increment — is part of the
    /// determinism contract.
    pub fn neighbors(&self, point: &Point) -> Vec<Point> {
        let mut out = Vec::new();
        for axis in &self.axes {
            let Some(current) = point.get(axis.name) else { continue };
            match (axis.domain, current) {
                (AxisDomain::Int { min, max, step }, AxisValue::Int(v)) => {
                    if v - step >= min {
                        out.push(point.with(axis.name, AxisValue::Int(v - step)));
                    }
                    if v + step <= max {
                        out.push(point.with(axis.name, AxisValue::Int(v + step)));
                    }
                }
                (AxisDomain::Real { min, max, step }, AxisValue::Real(v)) => {
                    if v - step >= min - REAL_EPS {
                        out.push(point.with(axis.name, AxisValue::Real((v - step).max(min))));
                    }
                    if v + step <= max + REAL_EPS {
                        out.push(point.with(axis.name, AxisValue::Real((v + step).min(max))));
                    }
                }
                (AxisDomain::Choice { options }, AxisValue::Choice(v)) => {
                    if let Some(i) = options.iter().position(|&o| o == v) {
                        if i > 0 {
                            out.push(point.with(axis.name, AxisValue::Choice(options[i - 1])));
                        }
                        if i + 1 < options.len() {
                            out.push(point.with(axis.name, AxisValue::Choice(options[i + 1])));
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// A uniformly drawn on-step point. Consumes one `rng` draw per axis,
    /// so trajectories are reproducible from the seed alone.
    pub fn sample(&self, rng: &mut Rng64) -> Point {
        let entries = self
            .axes
            .iter()
            .map(|axis| {
                let value = match axis.domain {
                    AxisDomain::Int { min, max, step } => {
                        let n = ((max - min) / step) as usize + 1;
                        AxisValue::Int((min + rng.below(n) as i64 * step).min(max))
                    }
                    AxisDomain::Real { min, max, step } => {
                        let n = ((max - min) / step + REAL_EPS).floor() as usize + 1;
                        AxisValue::Real((min + rng.below(n) as f64 * step).min(max))
                    }
                    AxisDomain::Choice { options } => {
                        AxisValue::Choice(options[rng.below(options.len())])
                    }
                };
                (axis.name, value)
            })
            .collect();
        Point::new(entries)
    }
}

/// Up to `levels` evenly spread on-step values of one axis.
fn axis_levels(domain: AxisDomain, levels: usize) -> Vec<AxisValue> {
    match domain {
        AxisDomain::Int { min, max, step } => {
            let total = ((max - min) / step) as usize + 1;
            let picks = level_indices(total, levels);
            picks.into_iter().map(|i| AxisValue::Int((min + i as i64 * step).min(max))).collect()
        }
        AxisDomain::Real { min, max, step } => {
            let total = ((max - min) / step + REAL_EPS).floor() as usize + 1;
            let picks = level_indices(total, levels);
            picks.into_iter().map(|i| AxisValue::Real((min + i as f64 * step).min(max))).collect()
        }
        AxisDomain::Choice { options } => options.iter().map(|&o| AxisValue::Choice(o)).collect(),
    }
}

/// `levels` indices evenly spread over `0..total`, deduplicated,
/// always including both endpoints when `total > 1`.
fn level_indices(total: usize, levels: usize) -> Vec<usize> {
    if total <= levels {
        return (0..total).collect();
    }
    let mut out = Vec::with_capacity(levels);
    for i in 0..levels {
        // Round-to-nearest spread over the step grid.
        let idx = (i * (total - 1) + (levels - 1) / 2) / (levels - 1);
        if out.last() != Some(&idx) {
            out.push(idx);
        }
    }
    out
}

/// A configuration type that exposes itself as a point in a typed,
/// bounded parameter space.
///
/// Implementations live here in `enw-core` (the only crate that sees
/// both the trait and every config struct); the structs themselves stay
/// dependency-free in their kernel crates.
pub trait Tunable: Sized {
    /// The parameter space, axes in struct-field order.
    fn space() -> ParamSpace;

    /// This configuration as a point (entries in axis order).
    fn encode(&self) -> Point;

    /// The configuration at `point`, validated first against
    /// [`space`](Tunable::space) bounds and then by the crate's own
    /// builder for cross-field constraints.
    fn decode(point: &Point) -> Result<Self, EnwError>;
}

// --- implementations -----------------------------------------------------

/// Update-scheme labels for the `update` choice axis of [`TileConfig`].
const UPDATE_OPTIONS: &[&str] = &["stochastic", "mean_field"];

/// Interaction labels for the `interaction` choice axis of
/// [`RecModelConfig`].
const INTERACTION_OPTIONS: &[&str] = &["concat", "dot_pairwise"];

impl Tunable for TileConfig {
    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            // Bit-width 0 encodes "no converter" (ideal periphery).
            AxisSpec { name: "dac_bits", domain: AxisDomain::Int { min: 0, max: 10, step: 1 } },
            AxisSpec { name: "adc_bits", domain: AxisDomain::Int { min: 0, max: 12, step: 1 } },
            AxisSpec {
                name: "read_noise",
                domain: AxisDomain::Real { min: 0.0, max: 0.2, step: 0.02 },
            },
            AxisSpec {
                name: "drop_connect",
                domain: AxisDomain::Real { min: 0.0, max: 0.9, step: 0.05 },
            },
            AxisSpec { name: "update", domain: AxisDomain::Choice { options: UPDATE_OPTIONS } },
            AxisSpec { name: "bl", domain: AxisDomain::Int { min: 1, max: 127, step: 10 } },
        ])
    }

    fn encode(&self) -> Point {
        let (update, bl) = match self.update {
            UpdateScheme::StochasticPulse { bl } => ("stochastic", i64::from(bl)),
            // MeanField has no pulse train; encode the canonical default
            // so the axis stays populated.
            UpdateScheme::MeanField => ("mean_field", 31),
        };
        Point::new(vec![
            ("dac_bits", AxisValue::Int(self.noise.dac_bits.map_or(0, i64::from))),
            ("adc_bits", AxisValue::Int(self.noise.adc_bits.map_or(0, i64::from))),
            ("read_noise", AxisValue::Real(f64::from(self.noise.read_noise))),
            ("drop_connect", AxisValue::Real(f64::from(self.drop_connect))),
            ("update", AxisValue::Choice(update)),
            ("bl", AxisValue::Int(bl)),
        ])
    }

    fn decode(point: &Point) -> Result<Self, EnwError> {
        Self::space().validate(point).map_err(EnwError::from)?;
        let dac_bits = point.int("dac_bits").map_err(EnwError::from)?;
        let adc_bits = point.int("adc_bits").map_err(EnwError::from)?;
        let standard = AnalogNoise::standard();
        let noise = AnalogNoise {
            dac_bits: (dac_bits > 0).then_some(dac_bits as u32),
            adc_bits: (adc_bits > 0).then_some(adc_bits as u32),
            read_noise: point.real("read_noise").map_err(EnwError::from)? as f32,
            // Not tunable axes: keep the standard periphery's values.
            output_bound: standard.output_bound,
            ir_drop: standard.ir_drop,
        };
        let update = match point.choice("update").map_err(EnwError::from)? {
            "mean_field" => UpdateScheme::MeanField,
            _ => UpdateScheme::StochasticPulse {
                bl: point.int("bl").map_err(EnwError::from)? as u32,
            },
        };
        let drop_connect = point.real("drop_connect").map_err(EnwError::from)? as f32;
        TileConfig::builder()
            .noise(noise)
            .update(update)
            .drop_connect(drop_connect)
            .build()
            .map_err(EnwError::from)
    }
}

impl Tunable for XmannConfig {
    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            AxisSpec {
                name: "tile_rows",
                domain: AxisDomain::Int { min: 32, max: 1024, step: 32 },
            },
            AxisSpec { name: "tile_cols", domain: AxisDomain::Int { min: 16, max: 128, step: 16 } },
            AxisSpec {
                name: "tiles_per_subarray",
                domain: AxisDomain::Int { min: 1, max: 16, step: 1 },
            },
            AxisSpec {
                name: "total_tiles",
                domain: AxisDomain::Int { min: 16, max: 1024, step: 16 },
            },
        ])
    }

    fn encode(&self) -> Point {
        Point::new(vec![
            ("tile_rows", AxisValue::Int(self.tile_rows as i64)),
            ("tile_cols", AxisValue::Int(self.tile_cols as i64)),
            ("tiles_per_subarray", AxisValue::Int(self.tiles_per_subarray as i64)),
            ("total_tiles", AxisValue::Int(self.total_tiles as i64)),
        ])
    }

    fn decode(point: &Point) -> Result<Self, EnwError> {
        Self::space().validate(point).map_err(EnwError::from)?;
        XmannConfig::builder()
            .tile_rows(point.int("tile_rows").map_err(EnwError::from)? as usize)
            .tile_cols(point.int("tile_cols").map_err(EnwError::from)? as usize)
            .tiles_per_subarray(point.int("tiles_per_subarray").map_err(EnwError::from)? as usize)
            .total_tiles(point.int("total_tiles").map_err(EnwError::from)? as usize)
            .build()
            .map_err(EnwError::from)
    }
}

impl Tunable for TcamConfig {
    fn space() -> ParamSpace {
        ParamSpace::new(vec![AxisSpec {
            name: "segments",
            domain: AxisDomain::Int { min: 1, max: 8, step: 1 },
        }])
    }

    fn encode(&self) -> Point {
        Point::new(vec![("segments", AxisValue::Int(self.segments as i64))])
    }

    fn decode(point: &Point) -> Result<Self, EnwError> {
        Self::space().validate(point).map_err(EnwError::from)?;
        TcamConfig::builder()
            .segments(point.int("segments").map_err(EnwError::from)? as usize)
            .build()
            .map_err(EnwError::from)
    }
}

impl Tunable for SgdConfig {
    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            AxisSpec { name: "epochs", domain: AxisDomain::Int { min: 1, max: 200, step: 1 } },
            AxisSpec {
                name: "learning_rate",
                domain: AxisDomain::Real { min: 0.005, max: 0.5, step: 0.005 },
            },
        ])
    }

    fn encode(&self) -> Point {
        Point::new(vec![
            ("epochs", AxisValue::Int(self.epochs as i64)),
            ("learning_rate", AxisValue::Real(f64::from(self.learning_rate))),
        ])
    }

    fn decode(point: &Point) -> Result<Self, EnwError> {
        Self::space().validate(point).map_err(EnwError::from)?;
        SgdConfig::builder()
            .epochs(point.int("epochs").map_err(EnwError::from)? as usize)
            .learning_rate(point.real("learning_rate").map_err(EnwError::from)? as f32)
            .build()
            .map_err(EnwError::from)
    }
}

impl Tunable for EmbeddingConfig {
    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            // One-hidden-layer family: multi-layer stacks encode their
            // first width (see module conventions on lossy families).
            AxisSpec {
                name: "hidden_width",
                domain: AxisDomain::Int { min: 16, max: 256, step: 16 },
            },
            AxisSpec { name: "embed_dim", domain: AxisDomain::Int { min: 8, max: 128, step: 8 } },
            AxisSpec {
                name: "background_classes",
                domain: AxisDomain::Int { min: 2, max: 50, step: 2 },
            },
            AxisSpec {
                name: "samples_per_class",
                domain: AxisDomain::Int { min: 1, max: 100, step: 5 },
            },
            AxisSpec { name: "epochs", domain: AxisDomain::Int { min: 1, max: 50, step: 1 } },
            AxisSpec {
                name: "learning_rate",
                domain: AxisDomain::Real { min: 0.005, max: 0.5, step: 0.005 },
            },
        ])
    }

    fn encode(&self) -> Point {
        Point::new(vec![
            ("hidden_width", AxisValue::Int(self.hidden.first().map_or(64, |&w| w as i64))),
            ("embed_dim", AxisValue::Int(self.embed_dim as i64)),
            ("background_classes", AxisValue::Int(self.background_classes as i64)),
            ("samples_per_class", AxisValue::Int(self.samples_per_class as i64)),
            ("epochs", AxisValue::Int(self.epochs as i64)),
            ("learning_rate", AxisValue::Real(f64::from(self.learning_rate))),
        ])
    }

    fn decode(point: &Point) -> Result<Self, EnwError> {
        Self::space().validate(point).map_err(EnwError::from)?;
        EmbeddingConfig::builder()
            .hidden(vec![point.int("hidden_width").map_err(EnwError::from)? as usize])
            .embed_dim(point.int("embed_dim").map_err(EnwError::from)? as usize)
            .background_classes(point.int("background_classes").map_err(EnwError::from)? as usize)
            .samples_per_class(point.int("samples_per_class").map_err(EnwError::from)? as usize)
            .epochs(point.int("epochs").map_err(EnwError::from)? as usize)
            .learning_rate(point.real("learning_rate").map_err(EnwError::from)? as f32)
            .build()
            .map_err(EnwError::from)
    }
}

impl Tunable for RecModelConfig {
    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            AxisSpec {
                name: "dense_features",
                domain: AxisDomain::Int { min: 16, max: 512, step: 16 },
            },
            // Uniform family: bottom MLP is [bottom_width, embedding_dim],
            // all tables share (rows, lookups), top MLP is [top_width].
            AxisSpec {
                name: "bottom_width",
                domain: AxisDomain::Int { min: 16, max: 1024, step: 16 },
            },
            AxisSpec {
                name: "embedding_dim",
                domain: AxisDomain::Int { min: 8, max: 128, step: 8 },
            },
            AxisSpec { name: "tables", domain: AxisDomain::Int { min: 1, max: 32, step: 1 } },
            AxisSpec {
                name: "rows",
                domain: AxisDomain::Int { min: 1024, max: 2_097_152, step: 1024 },
            },
            AxisSpec { name: "lookups", domain: AxisDomain::Int { min: 1, max: 64, step: 1 } },
            AxisSpec {
                name: "top_width",
                domain: AxisDomain::Int { min: 16, max: 1024, step: 16 },
            },
            AxisSpec {
                name: "interaction",
                domain: AxisDomain::Choice { options: INTERACTION_OPTIONS },
            },
        ])
    }

    fn encode(&self) -> Point {
        let (rows, lookups) = self.tables.first().map_or((1024, 1), |&(r, l)| (r, l));
        Point::new(vec![
            ("dense_features", AxisValue::Int(self.dense_features as i64)),
            ("bottom_width", AxisValue::Int(self.bottom_mlp.first().map_or(64, |&w| w as i64))),
            ("embedding_dim", AxisValue::Int(self.embedding_dim as i64)),
            ("tables", AxisValue::Int(self.tables.len() as i64)),
            ("rows", AxisValue::Int(rows as i64)),
            ("lookups", AxisValue::Int(lookups as i64)),
            ("top_width", AxisValue::Int(self.top_mlp.first().map_or(64, |&w| w as i64))),
            (
                "interaction",
                AxisValue::Choice(match self.interaction {
                    Interaction::Concat => "concat",
                    Interaction::DotPairwise => "dot_pairwise",
                }),
            ),
        ])
    }

    fn decode(point: &Point) -> Result<Self, EnwError> {
        Self::space().validate(point).map_err(EnwError::from)?;
        let embedding_dim = point.int("embedding_dim").map_err(EnwError::from)? as usize;
        let bottom_width = point.int("bottom_width").map_err(EnwError::from)? as usize;
        let tables = point.int("tables").map_err(EnwError::from)? as usize;
        let rows = point.int("rows").map_err(EnwError::from)? as usize;
        let lookups = point.int("lookups").map_err(EnwError::from)? as usize;
        let top_width = point.int("top_width").map_err(EnwError::from)? as usize;
        let interaction = match point.choice("interaction").map_err(EnwError::from)? {
            "dot_pairwise" => Interaction::DotPairwise,
            _ => Interaction::Concat,
        };
        RecModelConfig::builder(RecModelConfig::compute_bound())
            .dense_features(point.int("dense_features").map_err(EnwError::from)? as usize)
            .bottom_mlp(vec![bottom_width, embedding_dim])
            .embedding_dim(embedding_dim)
            .tables(vec![(rows, lookups); tables])
            .top_mlp(vec![top_width])
            .interaction(interaction)
            .build()
            .map_err(EnwError::from)
    }
}

impl Tunable for BatchPolicy {
    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            AxisSpec { name: "max_batch", domain: AxisDomain::Int { min: 1, max: 64, step: 1 } },
            AxisSpec {
                name: "max_wait_ns",
                domain: AxisDomain::Int { min: 0, max: 2_000_000, step: 25_000 },
            },
            AxisSpec { name: "queue_cap", domain: AxisDomain::Int { min: 1, max: 512, step: 16 } },
        ])
    }

    fn encode(&self) -> Point {
        Point::new(vec![
            ("max_batch", AxisValue::Int(self.max_batch as i64)),
            ("max_wait_ns", AxisValue::Int(self.max_wait_ns as i64)),
            ("queue_cap", AxisValue::Int(self.queue_cap as i64)),
        ])
    }

    fn decode(point: &Point) -> Result<Self, EnwError> {
        Self::space().validate(point).map_err(EnwError::from)?;
        BatchPolicy::builder()
            .max_batch(point.int("max_batch").map_err(EnwError::from)? as usize)
            .max_wait_ns(point.int("max_wait_ns").map_err(EnwError::from)? as u64)
            .queue_cap(point.int("queue_cap").map_err(EnwError::from)? as usize)
            .build()
            .map_err(EnwError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space3() -> ParamSpace {
        ParamSpace::new(vec![
            AxisSpec { name: "a", domain: AxisDomain::Int { min: 0, max: 10, step: 2 } },
            AxisSpec { name: "b", domain: AxisDomain::Real { min: 0.0, max: 1.0, step: 0.25 } },
            AxisSpec { name: "c", domain: AxisDomain::Choice { options: &["x", "y", "z"] } },
        ])
    }

    fn point3(a: i64, b: f64, c: &'static str) -> Point {
        Point::new(vec![
            ("a", AxisValue::Int(a)),
            ("b", AxisValue::Real(b)),
            ("c", AxisValue::Choice(c)),
        ])
    }

    #[test]
    fn validate_accepts_in_bounds_and_off_step() {
        assert_eq!(space3().validate(&point3(4, 0.5, "y")), Ok(()));
        // Off-step but in-bounds: fine by convention.
        assert_eq!(space3().validate(&point3(3, 0.33, "y")), Ok(()));
    }

    #[test]
    fn validate_rejects_each_failure_mode() {
        let s = space3();
        assert_eq!(s.validate(&point3(11, 0.5, "y")), Err(TunableError::OutOfBounds { axis: "a" }));
        assert_eq!(s.validate(&point3(4, 1.5, "y")), Err(TunableError::OutOfBounds { axis: "b" }));
        assert_eq!(s.validate(&point3(4, 0.5, "w")), Err(TunableError::OutOfBounds { axis: "c" }));
        let missing = Point::new(vec![("a", AxisValue::Int(4)), ("b", AxisValue::Real(0.5))]);
        assert_eq!(s.validate(&missing), Err(TunableError::MissingAxis { axis: "c" }));
        let unknown = point3(4, 0.5, "y").with("d", AxisValue::Int(1));
        assert_eq!(s.validate(&unknown), Err(TunableError::UnknownAxis { axis: "d" }));
        let wrong = Point::new(vec![
            ("a", AxisValue::Real(4.0)),
            ("b", AxisValue::Real(0.5)),
            ("c", AxisValue::Choice("y")),
        ]);
        assert_eq!(s.validate(&wrong), Err(TunableError::WrongKind { axis: "a" }));
    }

    #[test]
    fn grid_is_deterministic_and_valid() {
        let s = space3();
        let g1 = s.grid(3);
        let g2 = s.grid(3);
        assert_eq!(g1, g2);
        // 3 int levels × 3 real levels × 3 options.
        assert_eq!(g1.len(), 27);
        for p in &g1 {
            assert_eq!(s.validate(p), Ok(()), "{}", p.key());
        }
        // Endpoints are always included.
        assert!(g1.iter().any(|p| p.int("a").unwrap() == 0));
        assert!(g1.iter().any(|p| p.int("a").unwrap() == 10));
    }

    #[test]
    fn neighbors_stay_in_bounds_and_move_one_axis() {
        let s = space3();
        let p = point3(0, 0.5, "x");
        let ns = s.neighbors(&p);
        // a: only +2 (at min); b: ±0.25; c: only "y" (at first option).
        assert_eq!(ns.len(), 4);
        for n in &ns {
            assert_eq!(s.validate(n), Ok(()), "{}", n.key());
            let moved = n.entries().iter().zip(p.entries()).filter(|(x, y)| x != y).count();
            assert_eq!(moved, 1);
        }
    }

    #[test]
    fn sample_is_reproducible_from_the_seed() {
        let s = space3();
        let mut r1 = Rng64::new(7);
        let mut r2 = Rng64::new(7);
        for _ in 0..32 {
            let p = s.sample(&mut r1);
            assert_eq!(p, s.sample(&mut r2));
            assert_eq!(s.validate(&p), Ok(()), "{}", p.key());
        }
    }

    #[test]
    fn key_is_stable_and_ordered() {
        assert_eq!(point3(4, 0.5, "y").key(), "a=4,b=0.5,c=y");
    }

    #[test]
    fn default_configs_round_trip() {
        // decode(encode(c)) == c for every default (all on the family
        // manifold).
        let t = TileConfig::default();
        assert_eq!(TileConfig::decode(&t.encode()).unwrap(), t);
        let x = XmannConfig::default();
        assert_eq!(XmannConfig::decode(&x.encode()).unwrap(), x);
        let c = TcamConfig::default();
        assert_eq!(TcamConfig::decode(&c.encode()).unwrap(), c);
        let s = SgdConfig::default();
        assert_eq!(SgdConfig::decode(&s.encode()).unwrap(), s);
        let e = EmbeddingConfig::default();
        assert_eq!(EmbeddingConfig::decode(&e.encode()).unwrap(), e);
        let m = RecModelConfig::memory_bound();
        assert_eq!(RecModelConfig::decode(&m.encode()).unwrap(), m);
        let b = BatchPolicy::new(8, 200_000, 32);
        assert_eq!(BatchPolicy::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn decode_funnels_builder_errors() {
        // In-bounds per axis but cross-field invalid: queue_cap < max_batch.
        let p = Point::new(vec![
            ("max_batch", AxisValue::Int(64)),
            ("max_wait_ns", AxisValue::Int(0)),
            ("queue_cap", AxisValue::Int(1)),
        ]);
        assert!(matches!(BatchPolicy::decode(&p), Err(EnwError::Serve(_))));
    }

    #[test]
    fn decode_rejects_out_of_bounds_points() {
        let p = XmannConfig::default().encode().with("tile_rows", AxisValue::Int(4096));
        assert!(matches!(
            XmannConfig::decode(&p),
            Err(EnwError::Tunable(TunableError::OutOfBounds { axis: "tile_rows" }))
        ));
    }

    #[test]
    fn compute_bound_recsys_encodes_to_its_family_member() {
        // Lossy family: three-layer bottom MLP collapses to
        // [bottom_width, embedding_dim]; the re-decoded config is a fixed
        // point of decode ∘ encode.
        let c = RecModelConfig::compute_bound();
        let on_manifold = RecModelConfig::decode(&c.encode()).unwrap();
        assert_eq!(on_manifold.bottom_mlp, vec![512, 64]);
        assert_eq!(RecModelConfig::decode(&on_manifold.encode()).unwrap(), on_manifold);
    }
}
