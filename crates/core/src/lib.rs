//! Umbrella crate for the *Emerging Neural Workloads and Their Impact on
//! Hardware* (DATE 2020) reproduction workspace.
//!
//! The paper surveys three workload/hardware pairings; each lives in its
//! own crate and is re-exported here:
//!
//! | Paper section | Workload | Hardware | Crates |
//! |---|---|---|---|
//! | Sec. II | CNN/MLP training & inference | analog resistive crossbars | [`crossbar`] over [`nn`] |
//! | Sec. III–IV | memory-augmented NNs (one/few-shot) | X-MANN crossbars, TCAMs | [`mann`], [`xmann`], [`cam`] |
//! | Sec. V | neural recommendation | memory-system co-design | [`recsys`] |
//! | Sec. V-B (serving) | all four, behind one SLA-bound runtime | micro-batched lanes | [`serve`] |
//! | Sec. V-B (deployment) | sharded multi-node serving | consistent-hash fleet | [`fleet`] over [`serve`] |
//!
//! Shared numerics live in [`numerics`]; the [`parallel`] runtime fans
//! simulation hot paths out across threads with bit-identical results
//! (see DESIGN.md, "Execution model"). The [`serve`] crate fronts every
//! workload with the deterministic micro-batching serving runtime
//! (DESIGN.md, "Serving runtime"); the [`fleet`] crate scales that
//! runtime out to a sharded, autoscaled multi-node cluster (DESIGN.md,
//! "Fleet architecture"). The [`registry`] module indexes
//! every reproduced table/figure (E1–E21) and the `enw-bench` binary that
//! regenerates it; [`report`] renders the result tables.
//!
//! # Quickstart
//!
//! ```
//! use enw_core::registry::registry;
//!
//! for exp in registry() {
//!     println!("{}: {} -> {}", exp.id, exp.paper_anchor, exp.binary);
//! }
//! ```

pub use enw_cam as cam;
pub use enw_crossbar as crossbar;
pub use enw_fleet as fleet;
pub use enw_mann as mann;
pub use enw_nn as nn;
pub use enw_numerics as numerics;
pub use enw_parallel as parallel;
pub use enw_recsys as recsys;
pub use enw_serve as serve;
pub use enw_trace as trace;
pub use enw_xmann as xmann;

pub mod error;
pub mod prelude;
pub mod registry;
pub mod report;
pub mod tunable;

pub use error::EnwError;
pub use registry::{find, registry as experiments, Experiment};
pub use tunable::{AxisDomain, AxisSpec, AxisValue, ParamSpace, Point, Tunable, TunableError};
