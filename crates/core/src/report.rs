//! Plain-text table rendering for the experiment binaries.
//!
//! Every `expXX_*` binary prints the rows of the paper table/figure it
//! regenerates; this module keeps those tables aligned and uniform.

use std::fmt::Write as _;

/// A simple fixed-column text table.
///
/// # Example
///
/// ```
/// use enw_core::report::Table;
///
/// let mut t = Table::new(&["device", "asymmetry"]);
/// t.row(&["RRAM", "0.33"]);
/// let out = t.render();
/// assert!(out.contains("device"));
/// assert!(out.contains("RRAM"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned strings (handy with `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a ratio like `23.7x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.1}x")
}

/// Formats a percentage like `96.00%`.
pub fn percent(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats an energy value with an adaptive unit (pJ/nJ/µJ/mJ).
pub fn energy(pj: f64) -> String {
    if pj < 1e3 {
        format!("{pj:.1} pJ")
    } else if pj < 1e6 {
        format!("{:.2} nJ", pj / 1e3)
    } else if pj < 1e9 {
        format!("{:.2} uJ", pj / 1e6)
    } else {
        format!("{:.2} mJ", pj / 1e9)
    }
}

/// Formats a latency with an adaptive unit (ns/µs/ms).
pub fn latency(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{:.2} ms", ns / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["wide-cell-content", "x"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // Second column starts at the same offset in header and data rows.
        let h = lines[0].find("long-header").expect("header present");
        let d = lines[2].find('x').expect("cell present");
        assert_eq!(h, d);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(&["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(23.72), "23.7x");
        assert_eq!(percent(0.9606), "96.06%");
        assert_eq!(energy(500.0), "500.0 pJ");
        assert_eq!(energy(2_500.0), "2.50 nJ");
        assert_eq!(energy(3.2e6), "3.20 uJ");
        assert_eq!(latency(12.0), "12.0 ns");
        assert_eq!(latency(4.2e3), "4.20 us");
        assert_eq!(latency(7.5e6), "7.50 ms");
    }

    #[test]
    fn row_owned_accepts_format_output() {
        let mut t = Table::new(&["v"]);
        t.row_owned(vec![format!("{:.3}", 1.0 / 3.0)]);
        assert!(t.render().contains("0.333"));
    }
}
