//! The experiment registry: every quantitative claim, table and figure of
//! the paper, mapped to the binary that regenerates it.
//!
//! DESIGN.md holds the full per-experiment rationale; this module is the
//! machine-readable index (used by `enw-bench` to enumerate and by tests
//! to guarantee the index stays complete).

use crate::error::EnwError;

/// One reproducible experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// Stable identifier (`"E1"` …).
    pub id: &'static str,
    /// Where in the paper the claim lives.
    pub paper_anchor: &'static str,
    /// What is being reproduced.
    pub claim: &'static str,
    /// The `enw-bench` binary that regenerates it.
    pub binary: &'static str,
}

/// All experiments, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E1",
            paper_anchor: "Fig. 1, Sec. II-A",
            claim: "Crossbar VMM + parallel rank-1 stochastic update run in O(1) crossbar cycles independent of array size",
            binary: "exp01_crossbar_ops",
        },
        Experiment {
            id: "E2",
            paper_anchor: "Sec. II-A (RPU specs, ref. 14)",
            claim: "Analog SGD needs ~0.1% update granularity and few-% update symmetry; accuracy collapses beyond",
            binary: "exp02_device_requirements",
        },
        Experiment {
            id: "E3",
            paper_anchor: "Fig. 2, Sec. II-B2",
            claim: "RRAM response over 3 cycles of 1000 potentiation + 1000 depression pulses: nonlinear, asymmetric, noisy",
            binary: "exp03_rram_cycling",
        },
        Experiment {
            id: "E4",
            paper_anchor: "Sec. II-B5 (refs. 30, 35)",
            claim: "Zero-shifting + coupled-dynamics training on asymmetric devices ≈ ideal-device SGD; plain SGD degrades",
            binary: "exp04_asymmetric_training",
        },
        Experiment {
            id: "E5",
            paper_anchor: "Sec. II-B1 (refs. 18, 26, 27)",
            claim: "PCM differential pairs track signed weights with periodic reset; projection liner suppresses drift ~10x",
            binary: "exp05_pcm_pair_drift",
        },
        Experiment {
            id: "E6",
            paper_anchor: "Sec. III-B",
            claim: "X-MANN: 23.7-45.7x speedup and 75.1-267.1x energy reduction over GPU across MANN benchmarks",
            binary: "exp06_xmann_speedup",
        },
        Experiment {
            id: "E7",
            paper_anchor: "Sec. IV-B1 (ref. 48)",
            claim: "Combined Linf+L2 4-bit TCAM search: ~96.0% on 5-way 1-shot vs 99.06% FP32 cosine",
            binary: "exp07_range_encoding_accuracy",
        },
        Experiment {
            id: "E8",
            paper_anchor: "Fig. 5 inset, Sec. IV-B2",
            claim: "LSH-TCAM accuracy approaches (sometimes matches) cosine-GPU across N-way K-shot settings",
            binary: "exp08_lsh_accuracy",
        },
        Experiment {
            id: "E9",
            paper_anchor: "Sec. IV-B2",
            claim: "16T CMOS TCAM memory search: 24x energy and 2582x latency reduction vs cosine on GPU+DRAM",
            binary: "exp09_tcam_vs_gpu",
        },
        Experiment {
            id: "E10",
            paper_anchor: "Sec. IV-C (ref. 9)",
            claim: "2-FeFET TCAM adds 1.1x latency and 2.4x energy reduction over 16T CMOS, at ~8x density",
            binary: "exp10_fefet_tcam",
        },
        Experiment {
            id: "E11",
            paper_anchor: "Fig. 6, Sec. V-A",
            claim: "DLRM-style model executes dense stack + embedding pooling + interaction + predictor end to end",
            binary: "exp11_recsys_inference",
        },
        Experiment {
            id: "E12",
            paper_anchor: "Sec. V-B",
            claim: "Embedding ops have orders-of-magnitude lower arithmetic intensity; configs split compute- vs memory-bound",
            binary: "exp12_recsys_roofline",
        },
        Experiment {
            id: "E13",
            paper_anchor: "Sec. V-B (ref. 65)",
            claim: "Reduced-precision embeddings compress tables up to ~16x with bounded quality loss",
            binary: "exp13_embedding_compression",
        },
        Experiment {
            id: "E14",
            paper_anchor: "Sec. V-B (ref. 66)",
            claim: "Zipf-skewed lookups give small caches high hit rates; the tail still forces DRAM",
            binary: "exp14_embedding_cache",
        },
        Experiment {
            id: "E15",
            paper_anchor: "Methodology (simulation throughput)",
            claim: "Cache-blocked and multi-threaded simulation kernels beat the naive baselines >=2x with bit-identical outputs",
            binary: "exp15_parallel_scaling",
        },
        Experiment {
            id: "E16",
            paper_anchor: "Sec. V-B (serving SLAs)",
            claim: "All four workloads served under one deterministic micro-batching runtime: SLA-derived batch sizes, deadline shedding, and analog-to-digital degradation keep tails bounded across under- and over-saturated QPS",
            binary: "exp16_serving_slo",
        },
        Experiment {
            id: "E17",
            paper_anchor: "Methodology (workload attribution)",
            claim: "Instrumented kernels attribute per-stage work shares across all four workload lanes, bit-identical across reruns and thread counts",
            binary: "exp17_stage_breakdown",
        },
        Experiment {
            id: "E18",
            paper_anchor: "Methodology (memory discipline)",
            claim: "Scratch-pooled `_into` kernels cut steady-state allocations per inference >=90% on all four lanes and the serving loop runs allocation-free per request, outputs bit-identical to the allocating APIs",
            binary: "exp18_alloc_audit",
        },
        Experiment {
            id: "E19",
            paper_anchor: "Sec. V-B (deployment at fleet scale)",
            claim: "Sharded multi-node serving with consistent-hash routing, replicated embedding shards and reactive autoscaling holds tails and goodput-per-node across traffic shapes and fleet sizes, bit-identical at any thread count",
            binary: "exp19_fleet_sweep",
        },
        Experiment {
            id: "E20",
            paper_anchor: "Sec. VI (hardware/workload co-design)",
            claim: "Deterministic design-space exploration over the tunable configs of all five lanes yields per-lane Pareto fronts (latency/energy/quality-per-area) that dominate the hand-picked defaults, bit-identical at any thread count",
            binary: "exp20_dse",
        },
        Experiment {
            id: "E21",
            paper_anchor: "Sec. II (large-scale analog training, refs. 14, 36)",
            claim: "A streaming tiled analog-training pipeline trains >=6-layer conv stacks as grids of crossbar tiles with zero steady-state allocations per step, byte-identical across reruns, thread counts and checkpoint/resume; accuracy-vs-device surfaces and virtual-clock throughput recorded",
            binary: "exp21_deep_analog",
        },
    ]
}

/// Looks up one experiment by id (`"E1"` … ).
///
/// # Errors
///
/// Returns [`EnwError::UnknownExperiment`] when no entry carries `id`.
pub fn find(id: &str) -> Result<Experiment, EnwError> {
    registry()
        .into_iter()
        .find(|e| e.id == id)
        .ok_or_else(|| EnwError::UnknownExperiment { id: id.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_resolves_every_registered_id() {
        for e in registry() {
            assert_eq!(find(e.id), Ok(e));
        }
    }

    #[test]
    fn find_reports_unknown_ids() {
        let err = find("E99");
        assert_eq!(err, Err(EnwError::UnknownExperiment { id: "E99".into() }));
    }

    #[test]
    fn twenty_one_experiments_in_order() {
        let r = registry();
        assert_eq!(r.len(), 21);
        for (i, e) in r.iter().enumerate() {
            assert_eq!(e.id, format!("E{}", i + 1));
        }
    }

    #[test]
    fn ids_and_binaries_unique() {
        let r = registry();
        let mut ids: Vec<_> = r.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), r.len());
        let mut bins: Vec<_> = r.iter().map(|e| e.binary).collect();
        bins.sort_unstable();
        bins.dedup();
        assert_eq!(bins.len(), r.len());
    }

    #[test]
    fn every_entry_names_its_anchor() {
        for e in registry() {
            assert!(!e.paper_anchor.is_empty());
            assert!(!e.claim.is_empty());
            assert!(e.binary.starts_with("exp"));
        }
    }

    #[test]
    fn every_binary_exists_in_enw_bench() {
        // The registry is only useful if each entry's binary actually
        // builds; catch dangling names at the source tree level.
        let bench_bins = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../bench/src/bin");
        for e in registry() {
            let src = bench_bins.join(format!("{}.rs", e.binary));
            assert!(src.is_file(), "{}: missing bench binary source {}", e.id, src.display());
        }
    }
}
