//! The workspace-level error type.
//!
//! Per-crate APIs return their own typed errors (`ServeError`,
//! `RecsysError`, `CrossbarError`); applications composing several
//! workloads can funnel all of them into [`EnwError`] with `?` — the
//! `From` impls below — and still reach the originating error through
//! [`std::error::Error::source`].

use crate::tunable::TunableError;
use enw_cam::error::CamError;
use enw_crossbar::error::CrossbarError;
use enw_mann::error::MannError;
use enw_nn::error::NnError;
use enw_recsys::error::RecsysError;
use enw_serve::error::ServeError;
use enw_xmann::error::XmannError;
use std::error::Error;
use std::fmt;

/// Any error produced by the workspace's public APIs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnwError {
    /// A serving-runtime error.
    Serve(ServeError),
    /// A recommendation-model error.
    Recsys(RecsysError),
    /// A crossbar-configuration error.
    Crossbar(CrossbarError),
    /// A TCAM-configuration error.
    Cam(CamError),
    /// An X-MANN-configuration error.
    Xmann(XmannError),
    /// A digital-NN-configuration error.
    Nn(NnError),
    /// A MANN-configuration error.
    Mann(MannError),
    /// A parameter-space encode/decode error.
    Tunable(TunableError),
    /// An experiment id not present in the registry.
    UnknownExperiment {
        /// The id that was looked up.
        id: String,
    },
}

impl fmt::Display for EnwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnwError::Serve(e) => write!(f, "serving runtime: {e}"),
            EnwError::Recsys(e) => write!(f, "recommendation model: {e}"),
            EnwError::Crossbar(e) => write!(f, "crossbar simulator: {e}"),
            EnwError::Cam(e) => write!(f, "TCAM model: {e}"),
            EnwError::Xmann(e) => write!(f, "X-MANN model: {e}"),
            EnwError::Nn(e) => write!(f, "NN substrate: {e}"),
            EnwError::Mann(e) => write!(f, "MANN model: {e}"),
            EnwError::Tunable(e) => write!(f, "parameter space: {e}"),
            EnwError::UnknownExperiment { id } => {
                write!(f, "unknown experiment id {id} (see enw_core::experiments())")
            }
        }
    }
}

impl Error for EnwError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnwError::Serve(e) => Some(e),
            EnwError::Recsys(e) => Some(e),
            EnwError::Crossbar(e) => Some(e),
            EnwError::Cam(e) => Some(e),
            EnwError::Xmann(e) => Some(e),
            EnwError::Nn(e) => Some(e),
            EnwError::Mann(e) => Some(e),
            EnwError::Tunable(e) => Some(e),
            EnwError::UnknownExperiment { .. } => None,
        }
    }
}

impl From<ServeError> for EnwError {
    fn from(e: ServeError) -> Self {
        EnwError::Serve(e)
    }
}

impl From<RecsysError> for EnwError {
    fn from(e: RecsysError) -> Self {
        EnwError::Recsys(e)
    }
}

impl From<CrossbarError> for EnwError {
    fn from(e: CrossbarError) -> Self {
        EnwError::Crossbar(e)
    }
}

impl From<CamError> for EnwError {
    fn from(e: CamError) -> Self {
        EnwError::Cam(e)
    }
}

impl From<XmannError> for EnwError {
    fn from(e: XmannError) -> Self {
        EnwError::Xmann(e)
    }
}

impl From<NnError> for EnwError {
    fn from(e: NnError) -> Self {
        EnwError::Nn(e)
    }
}

impl From<MannError> for EnwError {
    fn from(e: MannError) -> Self {
        EnwError::Mann(e)
    }
}

impl From<TunableError> for EnwError {
    fn from(e: TunableError) -> Self {
        EnwError::Tunable(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_mark_funnels_every_crate_error() {
        fn serve() -> Result<(), EnwError> {
            Err(ServeError::NoStations)?
        }
        fn recsys() -> Result<(), EnwError> {
            Err(RecsysError::ZeroBatchCap)?
        }
        fn crossbar() -> Result<(), EnwError> {
            Err(CrossbarError::InvalidConfig { reason: "x" })?
        }
        fn cam() -> Result<(), EnwError> {
            Err(CamError::InvalidConfig { reason: "x" })?
        }
        fn xmann() -> Result<(), EnwError> {
            Err(XmannError::InvalidConfig { reason: "x" })?
        }
        fn nn() -> Result<(), EnwError> {
            Err(NnError::InvalidConfig { reason: "x" })?
        }
        fn mann() -> Result<(), EnwError> {
            Err(MannError::InvalidConfig { reason: "x" })?
        }
        assert_eq!(serve(), Err(EnwError::Serve(ServeError::NoStations)));
        assert_eq!(recsys(), Err(EnwError::Recsys(RecsysError::ZeroBatchCap)));
        assert!(matches!(crossbar(), Err(EnwError::Crossbar(_))));
        assert!(matches!(cam(), Err(EnwError::Cam(_))));
        assert!(matches!(xmann(), Err(EnwError::Xmann(_))));
        assert!(matches!(nn(), Err(EnwError::Nn(_))));
        assert!(matches!(mann(), Err(EnwError::Mann(_))));
    }

    #[test]
    fn source_chain_reaches_the_originating_error() {
        let e = EnwError::from(ServeError::QueueFull { capacity: 8 });
        let src = e.source().expect("wrapped errors expose a source");
        assert!(src.to_string().contains("capacity 8"), "{src}");
        assert!(EnwError::UnknownExperiment { id: "E99".into() }.source().is_none());
    }

    #[test]
    fn display_prefixes_the_subsystem() {
        let e = EnwError::from(RecsysError::ZeroBatchCap);
        assert!(e.to_string().starts_with("recommendation model:"), "{e}");
    }
}
