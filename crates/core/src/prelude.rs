//! One-line import surface for applications composing several workloads:
//!
//! ```
//! use enw_core::prelude::*;
//!
//! let mut rng = Rng64::new(7);
//! let policy = BatchPolicy::builder().max_batch(4).build().expect("valid");
//! assert_eq!(policy.max_batch, 4);
//! let _ = rng.next_u64();
//! ```
//!
//! The prelude carries the names almost every consumer touches — the
//! backend traits, the deterministic RNG, the builder entry points, the
//! typed errors, and the observability handles — and nothing
//! workload-internal. Naming follows the workspace conventions in
//! DESIGN.md: `try_*` for fallible operations, `builder()` for staged
//! construction, `*Error` per crate plus [`EnwError`] at the top.

pub use crate::error::EnwError;
pub use crate::registry::{find as find_experiment, registry as experiments, Experiment};
pub use crate::tunable::{
    AxisDomain, AxisSpec, AxisValue, ParamSpace, Point, Tunable, TunableError,
};

pub use enw_numerics::rng::Rng64;

pub use enw_parallel::scratch::{self, take_bits, take_f32, take_usize};
pub use enw_parallel::scratch::{ScratchBits, ScratchF32, ScratchUsize};

pub use enw_nn::backend::{DigitalLinear, LinearBackend};
pub use enw_nn::error::NnError;
pub use enw_nn::mlp::{Mlp, SgdConfig, SgdConfigBuilder};

pub use enw_crossbar::device::DeviceSpec;
pub use enw_crossbar::error::CrossbarError;
pub use enw_crossbar::tile::{AnalogTile, TileConfig, TileConfigBuilder};

pub use enw_cam::array::{TcamArray, TcamConfig, TcamConfigBuilder};
pub use enw_cam::error::CamError;

pub use enw_xmann::arch::{Xmann, XmannConfig, XmannConfigBuilder};
pub use enw_xmann::error::XmannError;

pub use enw_mann::embedding::{EmbeddingConfig, EmbeddingConfigBuilder};
pub use enw_mann::error::MannError;
pub use enw_mann::memory::{DifferentiableMemory, Similarity};

pub use enw_recsys::error::RecsysError;
pub use enw_recsys::model::{RecModel, RecModelConfig, RecModelConfigBuilder};

pub use enw_serve::backend::Backend;
pub use enw_serve::error::ServeError;
pub use enw_serve::policy::{
    BatchPolicy, BatchPolicyBuilder, DegradePolicy, StationSpec, StationSpecBuilder,
};
pub use enw_serve::scheduler::Server;

pub use enw_trace::{
    counter_add, record_span, record_value, span, take_report, TraceMode, TraceReport,
};
