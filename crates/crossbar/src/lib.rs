//! Analog resistive crossbar simulation — paper Sec. II.
//!
//! This crate reproduces the modeling methodology behind the paper's
//! analog-training discussion: crosspoint devices with bounded, asymmetric,
//! noisy conductance updates; crossbar arrays performing in-place
//! vector–matrix products; tiles with realistic converter peripheries and
//! the stochastic-pulse parallel update of the Resistive Processing Unit
//! concept \[14\]; and the algorithmic mitigations the paper surveys —
//! zero-shifting \[30\], the coupled-dynamics training algorithm \[35\],
//! mixed-precision PCM/FeFET weight cells \[24\]\[38\], and hardware-aware
//! drop-connect training \[33\].
//!
//! # Layering
//!
//! * [`device`] — one crosspoint's pulse dynamics ([`device::PulsedDevice`]).
//! * [`devices`] — technology presets (RRAM, ECRAM, FeFET) plus the PCM
//!   differential pair and 2T-1FeFET hybrid cell.
//! * [`mod@array`] — a grid of devices with forward/transposed reads,
//!   write-verify programming, defect injection.
//! * [`noise`] — DAC/ADC quantization, read noise, clipping.
//! * [`inference`] — inference-only deployment on PCM pairs: programming,
//!   drift over time, and algorithmic drift compensation \[28\].
//! * [`tile`] — [`tile::AnalogTile`]: array + periphery, implementing the
//!   `enw-nn` `LinearBackend` trait so networks train on it unmodified.
//! * [`tiki_taka`] — the coupled-array training scheme for asymmetric
//!   devices.
//! * [`tiled`] — [`tiled::TiledAnalogLayer`]: a large logical layer
//!   sharded across a grid of tiles with deterministic halo-free
//!   partial-sum reduction and bit-exact checkpoint/resume.
//! * [`train`] — whole-network constructors and the comparison harness.
//! * [`pipeline`] — the streaming tiled training pipeline: deep
//!   conv/MLP stacks on tile grids, zero-alloc steady state, a virtual
//!   clock modeling prefetch/update overlap, and resumable checkpoints.
//!
//! # Example: train an MLP on simulated RRAM with Tiki-Taka
//!
//! ```
//! use enw_crossbar::{devices, train, tiki_taka::TikiTakaConfig, tile::TileConfig};
//! use enw_nn::activation::Activation;
//! use enw_nn::data::SyntheticImages;
//! use enw_nn::mlp::SgdConfig;
//! use enw_numerics::rng::Rng64;
//!
//! let mut rng = Rng64::new(1);
//! let split = SyntheticImages::builder()
//!     .classes(3).dim(16).train_per_class(20).test_per_class(10)
//!     .build(&mut rng);
//! let mut mlp = train::tiki_taka_mlp(
//!     &[16, 8, 3],
//!     &devices::rram(),
//!     TileConfig::ideal(),
//!     TikiTakaConfig { calibration_pairs: 200, ..Default::default() },
//!     Activation::Tanh,
//!     &mut rng,
//! );
//! let out = train::train_and_evaluate(
//!     &mut mlp, &split, &SgdConfig { epochs: 1, learning_rate: 0.05 }, &mut rng);
//! assert!(out.test_accuracy >= 0.0);
//! ```

pub mod array;
pub mod device;
pub mod devices;
pub mod error;
pub mod inference;
pub mod noise;
pub mod pipeline;
pub mod tiki_taka;
pub mod tile;
pub mod tiled;
pub mod train;

pub use array::AnalogArray;
pub use device::{DeviceSpec, PulseDir, PulsedDevice};
pub use error::CrossbarError;
pub use noise::AnalogNoise;
pub use tiki_taka::{TikiTakaConfig, TikiTakaTile};
pub use tile::{AnalogTile, TileConfig, TileConfigBuilder, UpdateScheme};
pub use tiled::{TiledAnalogLayer, TilingConfig};
