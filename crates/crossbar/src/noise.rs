//! Peripheral-circuit nonidealities: DAC/ADC quantization, read noise and
//! output clipping.
//!
//! An analog tile is only as good as its converters. The original RPU
//! analysis \[14\] bounds the periphery at roughly 7-bit input DACs, 9-bit
//! output ADCs with a bounded range, and additive cycle-to-cycle read
//! noise; [`AnalogNoise::standard`] reproduces that operating point.

use enw_numerics::rng::Rng64;

/// Peripheral noise/quantization configuration of an analog tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogNoise {
    /// Input DAC resolution; `None` disables input quantization.
    /// Inputs are clipped to `[-1, 1]` (the DAC full scale).
    pub dac_bits: Option<u32>,
    /// Output ADC resolution over `[-output_bound, output_bound]`;
    /// `None` disables output quantization.
    pub adc_bits: Option<u32>,
    /// Additive Gaussian read-noise σ per output line (absolute units).
    pub read_noise: f32,
    /// Output clipping bound (the ADC full scale).
    pub output_bound: f32,
    /// IR-drop coefficient: fractional signal attenuation accumulated
    /// across the array (0 disables; see `AnalogArray` for the model).
    pub ir_drop: f32,
}

impl AnalogNoise {
    /// A noiseless, quantization-free tile (floating-point equivalent).
    pub fn ideal() -> Self {
        AnalogNoise {
            dac_bits: None,
            adc_bits: None,
            read_noise: 0.0,
            output_bound: f32::INFINITY,
            ir_drop: 0.0,
        }
    }

    /// The RPU baseline periphery: 7-bit DAC, 9-bit ADC bounded at ±12,
    /// σ = 0.06 read noise.
    pub fn standard() -> Self {
        AnalogNoise {
            dac_bits: Some(7),
            adc_bits: Some(9),
            read_noise: 0.06,
            output_bound: 12.0,
            ir_drop: 0.0,
        }
    }

    /// Quantizes the input vector through the DAC model (in place).
    pub fn apply_input(&self, x: &mut [f32]) {
        if let Some(bits) = self.dac_bits {
            let levels = (1u32 << bits) - 1;
            for v in x.iter_mut() {
                let clipped = v.clamp(-1.0, 1.0);
                // Map [-1,1] onto `levels` uniform codes and back.
                let code = ((clipped + 1.0) / 2.0 * levels as f32).round();
                *v = code / levels as f32 * 2.0 - 1.0;
            }
        } else {
            for v in x.iter_mut() {
                *v = v.clamp(-1.0, 1.0);
            }
        }
    }

    /// Adds read noise, clips to the ADC range and quantizes the output
    /// vector (in place).
    pub fn apply_output(&self, y: &mut [f32], rng: &mut Rng64) {
        for v in y.iter_mut() {
            if self.read_noise > 0.0 {
                *v += (self.read_noise as f64 * rng.normal()) as f32;
            }
            if self.output_bound.is_finite() {
                *v = v.clamp(-self.output_bound, self.output_bound);
            }
            if let Some(bits) = self.adc_bits {
                let levels = (1u32 << bits) - 1;
                let b = self.output_bound;
                let code = ((*v + b) / (2.0 * b) * levels as f32).round();
                *v = code / levels as f32 * 2.0 * b - b;
            }
        }
    }
}

impl Default for AnalogNoise {
    fn default() -> Self {
        AnalogNoise::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_identity() {
        let n = AnalogNoise::ideal();
        let mut x = vec![0.123, -0.77, 0.5];
        let orig = x.clone();
        n.apply_input(&mut x);
        assert_eq!(x, orig);
        let mut rng = Rng64::new(0);
        let mut y = vec![100.0, -3.0];
        n.apply_output(&mut y, &mut rng);
        assert_eq!(y, vec![100.0, -3.0]);
    }

    #[test]
    fn dac_clips_and_quantizes() {
        let n = AnalogNoise { dac_bits: Some(2), ..AnalogNoise::ideal() };
        let mut x = vec![2.0, -2.0, 0.1];
        n.apply_input(&mut x);
        assert_eq!(x[0], 1.0);
        assert_eq!(x[1], -1.0);
        // 2 bits → 3 levels {-1, -1/3... } codes {0..3}: values -1, -1/3, 1/3, 1.
        assert!((x[2] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn dac_error_bounded_by_half_lsb() {
        let n = AnalogNoise { dac_bits: Some(7), ..AnalogNoise::ideal() };
        let lsb = 2.0 / ((1 << 7) - 1) as f32;
        for i in -50..=50 {
            let v = i as f32 / 50.0;
            let mut x = vec![v];
            n.apply_input(&mut x);
            assert!((x[0] - v).abs() <= lsb / 2.0 + 1e-6);
        }
    }

    #[test]
    fn adc_clips_to_bound() {
        let n = AnalogNoise { adc_bits: Some(9), output_bound: 12.0, ..AnalogNoise::ideal() };
        let mut rng = Rng64::new(1);
        let mut y = vec![50.0, -50.0];
        n.apply_output(&mut y, &mut rng);
        assert_eq!(y, vec![12.0, -12.0]);
    }

    #[test]
    fn read_noise_perturbs() {
        let n = AnalogNoise { read_noise: 0.1, ..AnalogNoise::ideal() };
        let mut rng = Rng64::new(2);
        let mut y = vec![1.0; 100];
        n.apply_output(&mut y, &mut rng);
        let spread = y.iter().fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!(spread.1 - spread.0 > 0.1);
    }

    #[test]
    fn standard_matches_rpu_operating_point() {
        let n = AnalogNoise::standard();
        assert_eq!(n.dac_bits, Some(7));
        assert_eq!(n.adc_bits, Some(9));
        assert_eq!(n.output_bound, 12.0);
    }
}
