//! The coupled-dynamics training algorithm for asymmetric device arrays
//! (paper Sec. II-B5, ref. \[35\] — colloquially "Tiki-Taka").
//!
//! Device asymmetry injects an unintentional cost term into plain SGD,
//! pulling weights toward each device's symmetry point instead of the loss
//! minimum. The fix couples two arrays:
//!
//! * **A** — a zero-shifted auxiliary array that receives every stochastic
//!   gradient update. Because it is zero-shifted, its asymmetric dynamics
//!   make it a *leaky integrator of the gradient* around logical zero.
//! * **C** — the main weight array. Periodically one column of A is read
//!   and transferred into C as a small proportional update.
//!
//! The effective weight is `W = C + γ·A`. All crossbar operations remain
//! fully parallel, so the scheme keeps the O(1) cost of the plain RPU
//! update — the paper's point that the "implementation cost of this new
//! algorithm is minimal".

use crate::device::DeviceSpec;
use crate::tile::{AnalogTile, TileConfig, TileStats};
use enw_nn::backend::LinearBackend;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

/// Hyper-parameters of the coupled-array scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TikiTakaConfig {
    /// Contribution of the auxiliary array to the effective weight.
    pub gamma: f32,
    /// Updates between successive column transfers.
    pub transfer_every: u32,
    /// Learning rate of the A→C transfer.
    pub transfer_lr: f32,
    /// Pulse pairs used for the zero-shift calibration of A.
    pub calibration_pairs: u32,
}

impl Default for TikiTakaConfig {
    fn default() -> Self {
        TikiTakaConfig { gamma: 0.5, transfer_every: 1, transfer_lr: 0.1, calibration_pairs: 1000 }
    }
}

/// A coupled pair of analog tiles implementing [`LinearBackend`].
///
/// # Example
///
/// ```
/// use enw_crossbar::devices;
/// use enw_crossbar::tiki_taka::{TikiTakaConfig, TikiTakaTile};
/// use enw_crossbar::tile::TileConfig;
/// use enw_nn::backend::LinearBackend;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut tile = TikiTakaTile::new(
///     4, 3, &devices::rram(), TileConfig::ideal(), TikiTakaConfig::default(), &mut rng);
/// let y = tile.forward(&[0.1, 0.2, 0.3]);
/// assert_eq!(y.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct TikiTakaTile {
    a: AnalogTile,
    c: AnalogTile,
    cfg: TikiTakaConfig,
    update_counter: u64,
    next_col: usize,
}

impl TikiTakaTile {
    /// Builds the coupled pair over `spec` devices; A is zero-shift
    /// calibrated immediately.
    pub fn new(
        out_dim: usize,
        in_dim: usize,
        spec: &DeviceSpec,
        tile_cfg: TileConfig,
        cfg: TikiTakaConfig,
        rng: &mut Rng64,
    ) -> Self {
        let mut a = AnalogTile::new(out_dim, in_dim, spec, tile_cfg, rng);
        a.calibrate_zero_shift(cfg.calibration_pairs);
        let c = AnalogTile::new(out_dim, in_dim, spec, tile_cfg, rng);
        TikiTakaTile { a, c, cfg, update_counter: 0, next_col: 0 }
    }

    /// Write-verify programs the *main* array's effective weights.
    pub fn program_effective(&mut self, target: &Matrix) {
        self.c.program_effective(target);
    }

    /// The main (C) tile.
    pub fn main_tile(&self) -> &AnalogTile {
        &self.c
    }

    /// The auxiliary (A) tile.
    pub fn aux_tile(&self) -> &AnalogTile {
        &self.a
    }

    /// Combined event counters of both tiles.
    pub fn stats(&self) -> TileStats {
        let a = self.a.stats();
        let c = self.c.stats();
        TileStats {
            forward_ops: a.forward_ops + c.forward_ops,
            backward_ops: a.backward_ops + c.backward_ops,
            update_ops: a.update_ops + c.update_ops,
            pulses: a.pulses + c.pulses,
        }
    }

    fn transfer_one_column(&mut self) {
        let cols = self.c.array().cols();
        enw_trace::record_span("crossbar/transfer", self.c.array().rows() as u64);
        let j = self.next_col;
        self.next_col = (self.next_col + 1) % cols;
        // Read the effective A column (a digital read in hardware).
        let a_col: Vec<f32> = {
            let w = self.a.weights();
            (0..w.rows()).map(|r| w.at(r, j)).collect()
        };
        // Transfer C[:,j] += transfer_lr * A[:,j]: express as the rank-1
        // update −lr·d·xᵀ with d = −A[:,j] and x = e_j.
        let d: Vec<f32> = a_col.iter().map(|v| -v).collect();
        let in_dim = self.c.in_dim();
        if j < in_dim {
            let mut x = vec![0.0f32; in_dim];
            x[j] = 1.0;
            self.c.update(&d, &x, self.cfg.transfer_lr);
        } else {
            // Bias column: the augmented constant input addresses it.
            let x = vec![0.0f32; in_dim];
            self.c.update(&d, &x, self.cfg.transfer_lr);
        }
    }
}

impl LinearBackend for TikiTakaTile {
    fn in_dim(&self) -> usize {
        self.c.in_dim()
    }

    fn out_dim(&self) -> usize {
        self.c.out_dim()
    }

    // enw:hot
    fn forward_into(&mut self, x: &[f32], out: &mut [f32]) {
        self.c.forward_into(x, out);
        let mut ya = enw_parallel::scratch::take_f32(out.len());
        self.a.forward_into(x, &mut ya);
        // `y = yc + γ·ya`, same term order as the allocating zip/map this
        // replaces, so the bits match.
        for (o, a) in out.iter_mut().zip(ya.iter()) {
            *o += self.cfg.gamma * a;
        }
    }

    // enw:hot
    fn backward_into(&mut self, delta: &[f32], out: &mut [f32]) {
        self.c.backward_into(delta, out);
        let mut da = enw_parallel::scratch::take_f32(out.len());
        self.a.backward_into(delta, &mut da);
        for (o, a) in out.iter_mut().zip(da.iter()) {
            *o += self.cfg.gamma * a;
        }
    }

    fn update(&mut self, delta: &[f32], x: &[f32], lr: f32) {
        self.a.update(delta, x, lr);
        self.update_counter += 1;
        if self.update_counter.is_multiple_of(self.cfg.transfer_every as u64) {
            self.transfer_one_column();
        }
    }

    fn weights(&self) -> Matrix {
        let mut w = self.c.weights();
        let a = self.a.weights();
        w.axpy(self.cfg.gamma, &a);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    fn tt(seed: u64) -> TikiTakaTile {
        let mut rng = Rng64::new(seed);
        TikiTakaTile::new(
            2,
            2,
            &devices::rram(),
            TileConfig::ideal(),
            TikiTakaConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn aux_array_is_zero_shifted() {
        let t = tt(1);
        assert!(t.aux_tile().is_zero_shifted());
        assert!(!t.main_tile().is_zero_shifted());
    }

    #[test]
    fn forward_combines_both_arrays() {
        let mut t = tt(2);
        t.program_effective(&Matrix::from_rows(&[&[0.4, 0.0, 0.0], &[0.0, 0.4, 0.0]]));
        let y = t.forward(&[1.0, 1.0]);
        // A starts (near) zero, so output ≈ C's contribution.
        assert!((y[0] - 0.4).abs() < 0.1, "{y:?}");
    }

    #[test]
    fn updates_flow_into_aux_first() {
        let mut t = TikiTakaTile::new(
            2,
            2,
            &devices::rram(),
            TileConfig::ideal(),
            TikiTakaConfig { transfer_every: 1000, ..TikiTakaConfig::default() },
            &mut Rng64::new(3),
        );
        let before_c = t.main_tile().array().read_matrix();
        for _ in 0..20 {
            t.update(&[1.0, -1.0], &[1.0, 0.5], 0.05);
        }
        // No transfer yet: C's physical array untouched by updates.
        assert_eq!(t.main_tile().array().read_matrix(), before_c);
        // A moved.
        let a_w = t.aux_tile().weights();
        assert!(a_w.max_abs() > 0.001);
    }

    #[test]
    fn transfers_eventually_move_main_array() {
        let mut t = tt(4);
        for _ in 0..60 {
            t.update(&[1.0, -1.0], &[1.0, 0.5], 0.05);
        }
        let c_w = t.main_tile().weights();
        assert!(c_w.max_abs() > 0.001, "transfers never reached C");
    }

    #[test]
    fn learns_linear_regression_despite_asymmetric_devices() {
        // The headline claim of [35]: training on aggressively asymmetric
        // (RRAM-like) devices still converges.
        let mut rng = Rng64::new(5);
        let mut t = TikiTakaTile::new(
            1,
            2,
            &devices::rram(),
            TileConfig::ideal(),
            TikiTakaConfig::default(),
            &mut Rng64::new(6),
        );
        let target = |x: &[f32]| 0.4 * x[0] - 0.3 * x[1];
        for _ in 0..3000 {
            let x = [rng.range(-1.0, 1.0) as f32, rng.range(-1.0, 1.0) as f32];
            let y = t.forward(&x)[0];
            let err = y - target(&x);
            t.update(&[err], &x, 0.02);
        }
        let mut err_sum = 0.0f64;
        for _ in 0..100 {
            let x = [rng.range(-1.0, 1.0) as f32, rng.range(-1.0, 1.0) as f32];
            err_sum += (t.forward(&x)[0] - target(&x)).abs() as f64;
        }
        let mae = err_sum / 100.0;
        assert!(mae < 0.12, "mean absolute error {mae}");
    }
}
