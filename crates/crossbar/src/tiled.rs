//! Weight tiling across a grid of analog tiles — training at depth
//! (paper Sec. II; Rasch 2019's simulated large-scale crossbar training).
//!
//! A single physical crossbar tops out around a few hundred word/bit
//! lines, so a large layer must shard its weight matrix across a grid of
//! [`AnalogTile`]s: row blocks partition the output dimension, column
//! blocks partition the input dimension. [`TiledAnalogLayer`] owns that
//! grid and exposes it as one logical [`LinearBackend`]:
//!
//! * **Forward** — each tile computes its partial product over its
//!   column slice of the input; per row block the partial sums are
//!   reduced in ascending column-block order (block 0 writes, later
//!   blocks accumulate), a fixed association that makes the layer
//!   bit-deterministic at any thread count.
//! * **Backward** — the transposed reads reduce per column block in
//!   ascending row-block order, same discipline.
//! * **Update** — every tile applies the stochastic pulse update to its
//!   own shard concurrently; tiles own independent RNG streams (forked
//!   in fixed grid order at construction), so the fan-out is
//!   embarrassingly parallel *and* schedule-independent.
//!
//! **Bias ownership.** Every [`AnalogTile`] physically carries a bias
//! column, but only the tiles in the **last** column block drive it
//! (at 1.0); all other tiles drive their bias line at 0.0, giving it
//! zero forward contribution and zero pulse probability. The logical
//! layer therefore has exactly one bias term per output row, and a
//! 1×1 grid is bit-identical to a monolithic [`AnalogTile`].
//!
//! Per-tile partial-sum buffers are persistent and the fan-out uses the
//! result-free [`enw_parallel::run_chunks_mut`] entry point, so
//! forward/backward/update are allocation-free in steady state.
//!
//! Checkpointing captures every bit of mutable state — conductances,
//! per-tile RNG streams, pulse counters — via [`enw_nn::snapshot`], so a
//! restored layer continues bit-identically to an uninterrupted run.

use crate::device::DeviceSpec;
use crate::error::CrossbarError;
use crate::tile::{AnalogTile, TileConfig, TileStats};
use enw_nn::backend::LinearBackend;
use enw_nn::snapshot::{check_dim, SnapshotError, StateReader, StateWriter};
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::{Rng64, RngState};

/// How a logical weight matrix is sharded into physical tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingConfig {
    /// Maximum output rows per tile (word lines).
    pub tile_rows: usize,
    /// Maximum input columns per tile (bit lines, excluding the bias).
    pub tile_cols: usize,
}

impl Default for TilingConfig {
    /// 256×256 — the array size the paper's Sec. II device-count
    /// estimates assume.
    fn default() -> Self {
        TilingConfig { tile_rows: 256, tile_cols: 256 }
    }
}

/// One grid cell: a physical tile plus its placement and persistent
/// partial-sum buffers.
#[derive(Debug, Clone)]
struct TileCell {
    tile: AnalogTile,
    /// First logical output row this tile covers.
    row0: usize,
    /// First logical input column this tile covers.
    col0: usize,
    /// True for tiles in the last column block, which own the logical
    /// bias line (driven at 1.0; all other tiles drive 0.0).
    owns_bias: bool,
    /// Forward partial sums, `tile.out_dim()` long.
    fwd: Vec<f32>,
    /// Backward partial sums, `tile.in_dim()` long.
    bwd: Vec<f32>,
}

/// A large logical layer sharded across a grid of [`AnalogTile`]s (see
/// the [module docs](self) for the reduction and bias disciplines).
///
/// # Example
///
/// ```
/// use enw_crossbar::devices;
/// use enw_crossbar::tile::TileConfig;
/// use enw_crossbar::tiled::{TiledAnalogLayer, TilingConfig};
/// use enw_nn::backend::LinearBackend;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut layer = TiledAnalogLayer::new(
///     20, 12,
///     &devices::ideal(1000),
///     TileConfig::ideal(),
///     TilingConfig { tile_rows: 8, tile_cols: 8 },
///     &mut rng,
/// ).unwrap();
/// assert_eq!(layer.grid(), (3, 2));
/// let y = layer.forward(&[0.1; 12]);
/// assert_eq!(y.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct TiledAnalogLayer {
    out_dim: usize,
    in_dim: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// Grid cells in row-major order (row block outer, column block
    /// inner) — also the partial-sum reduction order.
    cells: Vec<TileCell>,
    /// Work estimate per tile for the fan-out's parallel plan.
    per_tile_work: usize,
}

impl TiledAnalogLayer {
    /// Builds the grid over freshly materialized devices and
    /// write-verify programs it to a Xavier initialization (the same
    /// scheme [`crate::train::analog_mlp`] uses — fresh devices sit at
    /// zero weight, which would leave every ReLU dead and the network
    /// untrainable). Tiles are constructed (and their RNG streams
    /// forked from `rng`) in row-major grid order and the init matrix
    /// is drawn from `rng` afterwards, so the layer is a deterministic
    /// function of its configuration and seed; a 1×1 grid constructs
    /// exactly the tile a monolithic [`AnalogTile::new`] +
    /// [`AnalogTile::program_effective`] would.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if either layer
    /// dimension or either tiling dimension is zero.
    pub fn new(
        out_dim: usize,
        in_dim: usize,
        spec: &DeviceSpec,
        cfg: TileConfig,
        tiling: TilingConfig,
        rng: &mut Rng64,
    ) -> Result<Self, CrossbarError> {
        if out_dim == 0 || in_dim == 0 {
            return Err(CrossbarError::InvalidConfig {
                reason: "tiled layer dimensions must be non-zero",
            });
        }
        if tiling.tile_rows == 0 || tiling.tile_cols == 0 {
            return Err(CrossbarError::InvalidConfig {
                reason: "tile grid dimensions must be non-zero",
            });
        }
        let grid_rows = out_dim.div_ceil(tiling.tile_rows);
        let grid_cols = in_dim.div_ceil(tiling.tile_cols);
        let mut cells = Vec::with_capacity(grid_rows * grid_cols);
        for rb in 0..grid_rows {
            let row0 = rb * tiling.tile_rows;
            let rows = tiling.tile_rows.min(out_dim - row0);
            for cb in 0..grid_cols {
                let col0 = cb * tiling.tile_cols;
                let cols = tiling.tile_cols.min(in_dim - col0);
                cells.push(TileCell {
                    tile: AnalogTile::new(rows, cols, spec, cfg, rng),
                    row0,
                    col0,
                    owns_bias: cb == grid_cols - 1,
                    fwd: vec![0.0; rows],
                    bwd: vec![0.0; cols],
                });
            }
        }
        // Xavier init over the *logical* layer, drawn once after the
        // grid is built so the weight image is a function of the layer
        // shape and seed (the bias column starts at zero, as in
        // `crate::train`). Each tile write-verify programs its shard.
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let mut init = Matrix::random_uniform(out_dim, in_dim + 1, -limit, limit, rng);
        for r in 0..out_dim {
            init.set(r, in_dim, 0.0);
        }
        for cell in &mut cells {
            let rows = cell.fwd.len();
            let tin = cell.bwd.len();
            let mut target = Matrix::zeros(rows, tin + 1);
            for r in 0..rows {
                for c in 0..tin {
                    target.set(r, c, init.at(cell.row0 + r, cell.col0 + c));
                }
                if cell.owns_bias {
                    target.set(r, tin, init.at(cell.row0 + r, in_dim));
                }
            }
            cell.tile.program_effective(&target);
        }
        Ok(TiledAnalogLayer {
            out_dim,
            in_dim,
            grid_rows,
            grid_cols,
            cells,
            per_tile_work: tiling.tile_rows * tiling.tile_cols,
        })
    }

    /// Grid shape `(row blocks, column blocks)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }

    /// Number of physical tiles.
    pub fn tile_count(&self) -> usize {
        self.cells.len()
    }

    /// Event counters summed over every tile.
    pub fn stats(&self) -> TileStats {
        let mut total = TileStats::default();
        for cell in &self.cells {
            let s = cell.tile.stats();
            total.forward_ops += s.forward_ops;
            total.backward_ops += s.backward_ops;
            total.update_ops += s.update_ops;
            total.pulses += s.pulses;
        }
        total
    }

    /// Runs `f` on every cell, fanned out over the worker pool when the
    /// grid carries enough work ([`enw_parallel::plan_chunks`]). Cells
    /// only touch their own tile + buffers and their own RNG streams,
    /// so any schedule produces the same bits; the result-free fan-out
    /// keeps the section allocation-free in steady state.
    fn fan_out(&mut self, f: impl Fn(&mut TileCell) + Sync) {
        match enw_parallel::plan_chunks(self.cells.len(), self.per_tile_work) {
            Some(chunk) => enw_parallel::run_chunks_mut(&mut self.cells, chunk, |_, window| {
                for cell in window.iter_mut() {
                    f(cell);
                }
            }),
            None => {
                for cell in &mut self.cells {
                    f(cell);
                }
            }
        }
    }

    /// Serializes every bit of mutable state — per-tile conductances,
    /// RNG streams, pulse counters, event stats — in grid order.
    /// Restoring into an identically constructed layer
    /// ([`restore_state`](TiledAnalogLayer::restore_state)) resumes
    /// bit-identically.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.tag(b"TLYR");
        w.u64(self.out_dim as u64);
        w.u64(self.in_dim as u64);
        w.u64(self.grid_rows as u64);
        w.u64(self.grid_cols as u64);
        for cell in &self.cells {
            w.tag(b"TILE");
            let rs = cell.tile.rng_state();
            for word in rs.words {
                w.u64(word);
            }
            w.flag(rs.gauss_spare_bits.is_some());
            w.u64(rs.gauss_spare_bits.unwrap_or(0));
            w.u64(cell.tile.array().pulse_count());
            let s = cell.tile.stats();
            w.u64(s.forward_ops);
            w.u64(s.backward_ops);
            w.u64(s.update_ops);
            w.u64(s.pulses);
            w.f32_slice(cell.tile.array().weights_raw());
        }
    }

    /// Restores state captured by
    /// [`save_state`](TiledAnalogLayer::save_state). The layer must have
    /// been constructed with the same configuration and seed as the one
    /// that saved (device parameters are rebuilt from the seed, not
    /// serialized); shape mismatches are detected and rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the stream is truncated,
    /// mistagged, or shaped for a different grid.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        r.expect_tag(b"TLYR")?;
        check_dim("tiled layer out_dim", r.u64()?, self.out_dim as u64)?;
        check_dim("tiled layer in_dim", r.u64()?, self.in_dim as u64)?;
        check_dim("tiled layer grid rows", r.u64()?, self.grid_rows as u64)?;
        check_dim("tiled layer grid cols", r.u64()?, self.grid_cols as u64)?;
        for cell in &mut self.cells {
            r.expect_tag(b"TILE")?;
            let words = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            let has_spare = r.flag()?;
            let spare = r.u64()?;
            cell.tile.restore_rng(RngState {
                words,
                gauss_spare_bits: has_spare.then_some(spare),
            });
            let pulse_count = r.u64()?;
            let stats = TileStats {
                forward_ops: r.u64()?,
                backward_ops: r.u64()?,
                update_ops: r.u64()?,
                pulses: r.u64()?,
            };
            cell.tile.restore_stats(stats);
            let arr = cell.tile.array_mut();
            let mut weights = vec![0.0f32; arr.weights_raw().len()];
            r.f32_slice(&mut weights)?;
            arr.restore_weights(&weights);
            arr.restore_pulse_count(pulse_count);
        }
        Ok(())
    }
}

impl LinearBackend for TiledAnalogLayer {
    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    // enw:hot
    fn forward_into(&mut self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        assert_eq!(out.len(), self.out_dim, "output dimension mismatch");
        self.fan_out(|cell| {
            let xs = &x[cell.col0..cell.col0 + cell.tile.in_dim()];
            let bias = if cell.owns_bias { 1.0 } else { 0.0 };
            // Split borrow: the tile writes this cell's partial buffer.
            let TileCell { tile, fwd, .. } = cell;
            tile.forward_biased_into(xs, bias, fwd);
        });
        // Reduce per row block in ascending column-block order: the
        // first column block writes, later blocks accumulate. Fixed
        // association — bit-identical at any thread count, and a 1×1
        // grid degenerates to a plain copy of the monolithic read.
        for cell in &self.cells {
            let dst = &mut out[cell.row0..cell.row0 + cell.fwd.len()];
            if cell.col0 == 0 {
                dst.copy_from_slice(&cell.fwd);
            } else {
                for (o, v) in dst.iter_mut().zip(&cell.fwd) {
                    *o += *v;
                }
            }
        }
        let partials = self.cells.iter().map(|c| c.fwd.len() as u64).sum::<u64>();
        enw_trace::record_span_io("crossbar/tiled/reduce", partials, 4 * partials, 4 * out.len() as u64);
    }

    // enw:hot
    fn backward_into(&mut self, delta: &[f32], out: &mut [f32]) {
        assert_eq!(delta.len(), self.out_dim, "gradient dimension mismatch");
        assert_eq!(out.len(), self.in_dim, "gradient output dimension mismatch");
        self.fan_out(|cell| {
            let ds = &delta[cell.row0..cell.row0 + cell.tile.out_dim()];
            let TileCell { tile, bwd, .. } = cell;
            tile.backward_into(ds, bwd);
        });
        // Reduce per column block in ascending row-block order (row
        // block 0 writes, later blocks accumulate) — the transposed
        // discipline of the forward reduction.
        for cell in &self.cells {
            let dst = &mut out[cell.col0..cell.col0 + cell.bwd.len()];
            if cell.row0 == 0 {
                dst.copy_from_slice(&cell.bwd);
            } else {
                for (o, v) in dst.iter_mut().zip(&cell.bwd) {
                    *o += *v;
                }
            }
        }
        let partials = self.cells.iter().map(|c| c.bwd.len() as u64).sum::<u64>();
        enw_trace::record_span_io("crossbar/tiled/reduce", partials, 4 * partials, 4 * out.len() as u64);
    }

    fn update(&mut self, delta: &[f32], x: &[f32], lr: f32) {
        assert_eq!(delta.len(), self.out_dim, "gradient dimension mismatch");
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        self.fan_out(|cell| {
            let ds = &delta[cell.row0..cell.row0 + cell.tile.out_dim()];
            let xs = &x[cell.col0..cell.col0 + cell.tile.in_dim()];
            let bias = if cell.owns_bias { 1.0 } else { 0.0 };
            cell.tile.update_biased(ds, xs, bias, lr);
        });
    }

    fn weights(&self) -> Matrix {
        let mut m = Matrix::zeros(self.out_dim, self.in_dim + 1);
        for cell in &self.cells {
            let w = cell.tile.weights();
            let tin = cell.tile.in_dim();
            for r in 0..w.rows() {
                for c in 0..tin {
                    m.set(cell.row0 + r, cell.col0 + c, w.at(r, c));
                }
                if cell.owns_bias {
                    m.set(cell.row0 + r, self.in_dim, w.at(r, tin));
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    fn noisy_cfg() -> TileConfig {
        TileConfig { drop_connect: 0.25, ..TileConfig::ideal() }
    }

    fn weight_bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut rng = Rng64::new(1);
        let spec = devices::ideal(1000);
        let bad_dim =
            TiledAnalogLayer::new(0, 4, &spec, TileConfig::ideal(), TilingConfig::default(), &mut rng);
        assert!(matches!(bad_dim, Err(CrossbarError::InvalidConfig { .. })));
        let bad_tile = TiledAnalogLayer::new(
            4,
            4,
            &spec,
            TileConfig::ideal(),
            TilingConfig { tile_rows: 0, tile_cols: 8 },
            &mut rng,
        );
        assert!(matches!(bad_tile, Err(CrossbarError::InvalidConfig { .. })));
    }

    #[test]
    fn grid_covers_dimensions_with_remainders() {
        let mut rng = Rng64::new(2);
        let layer = TiledAnalogLayer::new(
            20,
            13,
            &devices::ideal(1000),
            TileConfig::ideal(),
            TilingConfig { tile_rows: 8, tile_cols: 5 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(layer.grid(), (3, 3));
        assert_eq!(layer.tile_count(), 9);
        let covered_rows: usize =
            layer.cells.iter().filter(|c| c.col0 == 0).map(|c| c.fwd.len()).sum();
        let covered_cols: usize =
            layer.cells.iter().filter(|c| c.row0 == 0).map(|c| c.bwd.len()).sum();
        assert_eq!(covered_rows, 20);
        assert_eq!(covered_cols, 13);
    }

    #[test]
    fn one_by_one_grid_is_bitwise_identical_to_monolithic_tile() {
        let spec = devices::rram();
        let cfg = noisy_cfg();
        let mut mono = {
            let mut rng = Rng64::new(33);
            let mut tile = AnalogTile::new(10, 6, &spec, cfg, &mut rng);
            // Mirror the tiled constructor's init sequence: Xavier drawn
            // from the layer RNG after construction, bias column zero.
            let limit = (6.0 / 16.0f64).sqrt();
            let mut init = Matrix::random_uniform(10, 7, -limit, limit, &mut rng);
            for r in 0..10 {
                init.set(r, 6, 0.0);
            }
            tile.program_effective(&init);
            tile
        };
        let mut tiled = {
            let mut rng = Rng64::new(33);
            TiledAnalogLayer::new(
                10,
                6,
                &spec,
                cfg,
                TilingConfig { tile_rows: 10, tile_cols: 6 },
                &mut rng,
            )
            .unwrap()
        };
        let x: Vec<f32> = (0..6).map(|i| (i as f32 - 2.5) / 4.0).collect();
        let d: Vec<f32> = (0..10).map(|i| ((i % 3) as f32 - 1.0) / 5.0).collect();
        for _ in 0..3 {
            let ym = mono.forward(&x);
            let yt = tiled.forward(&x);
            assert_eq!(
                ym.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                yt.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let bm = mono.backward(&d);
            let bt = tiled.backward(&d);
            assert_eq!(
                bm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                bt.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            mono.update(&d, &x, 0.02);
            tiled.update(&d, &x, 0.02);
        }
        assert_eq!(weight_bits(&mono.weights()), weight_bits(&tiled.weights()));
        assert_eq!(mono.stats().pulses, tiled.stats().pulses);
        assert!(mono.stats().pulses > 0);
    }

    #[test]
    fn tiled_cycles_are_thread_count_invariant() {
        let run = |threads: usize| {
            enw_parallel::with_threads(threads, || {
                let mut rng = Rng64::new(55);
                let mut layer = TiledAnalogLayer::new(
                    40,
                    30,
                    &devices::rram(),
                    noisy_cfg(),
                    TilingConfig { tile_rows: 16, tile_cols: 12 },
                    &mut rng,
                )
                .unwrap();
                let x: Vec<f32> = (0..30).map(|i| ((i % 7) as f32 - 3.0) / 8.0).collect();
                let d: Vec<f32> = (0..40).map(|i| ((i % 5) as f32 - 2.0) / 8.0).collect();
                let mut fwd = Vec::new();
                let mut bwd = Vec::new();
                for _ in 0..4 {
                    fwd = layer.forward(&x);
                    bwd = layer.backward(&d);
                    layer.update(&d, &x, 0.02);
                }
                (weight_bits(&layer.weights()), fwd, bwd, layer.stats().pulses)
            })
        };
        let (w1, f1, b1, p1) = run(1);
        assert!(p1 > 0);
        for threads in [2usize, 8] {
            let (w, f, b, p) = run(threads);
            assert_eq!(w, w1, "weights diverged at {threads} threads");
            assert_eq!(p, p1, "pulse count diverged at {threads} threads");
            assert!(f.iter().zip(&f1).all(|(a, b)| a.to_bits() == b.to_bits()));
            assert!(b.iter().zip(&b1).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn only_last_column_block_drives_the_bias() {
        let mut rng = Rng64::new(7);
        let mut layer = TiledAnalogLayer::new(
            6,
            8,
            &devices::ideal(2000),
            TileConfig::ideal(),
            TilingConfig { tile_rows: 6, tile_cols: 4 },
            &mut rng,
        )
        .unwrap();
        // With x = 0 only bias columns can fire pulses, and only in the
        // bias-owning (last) column block.
        let x = vec![0.0f32; 8];
        let d = vec![1.0f32; 6];
        for _ in 0..40 {
            layer.update(&d, &x, 0.05);
        }
        let non_owner_pulses: u64 =
            layer.cells.iter().filter(|c| !c.owns_bias).map(|c| c.tile.stats().pulses).sum();
        let owner_pulses: u64 =
            layer.cells.iter().filter(|c| c.owns_bias).map(|c| c.tile.stats().pulses).sum();
        assert_eq!(non_owner_pulses, 0, "non-owning tiles must keep their bias silent");
        assert!(owner_pulses > 0, "the owning block must train its bias");
        // The trained bias shows up in the forward read of a zero input.
        let y = layer.forward(&x);
        assert!(y.iter().any(|v| v.abs() > 1e-4), "{y:?}");
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let build = || {
            let mut rng = Rng64::new(99);
            TiledAnalogLayer::new(
                24,
                18,
                &devices::rram(),
                noisy_cfg(),
                TilingConfig { tile_rows: 10, tile_cols: 7 },
                &mut rng,
            )
            .unwrap()
        };
        let x: Vec<f32> = (0..18).map(|i| ((i % 4) as f32 - 1.5) / 4.0).collect();
        let d: Vec<f32> = (0..24).map(|i| ((i % 6) as f32 - 2.5) / 6.0).collect();
        // Uninterrupted run: 6 steps.
        let mut a = build();
        for _ in 0..3 {
            a.update(&d, &x, 0.03);
        }
        let mut w = StateWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        for _ in 0..3 {
            a.update(&d, &x, 0.03);
        }
        // Interrupted run: fresh layer, restore at step 3, same tail.
        let mut b = build();
        let mut r = StateReader::new(&bytes);
        b.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        for _ in 0..3 {
            b.update(&d, &x, 0.03);
        }
        assert_eq!(weight_bits(&a.weights()), weight_bits(&b.weights()));
        assert_eq!(a.stats(), b.stats());
        // And the post-resume forward reads match bitwise (RNG streams
        // must have been restored exactly).
        let ya = a.forward(&x);
        let yb = b.forward(&x);
        assert!(ya.iter().zip(&yb).all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let mut rng = Rng64::new(3);
        let spec = devices::ideal(1000);
        let layer = TiledAnalogLayer::new(
            8,
            8,
            &spec,
            TileConfig::ideal(),
            TilingConfig { tile_rows: 4, tile_cols: 4 },
            &mut rng,
        )
        .unwrap();
        let mut w = StateWriter::new();
        layer.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = TiledAnalogLayer::new(
            8,
            8,
            &spec,
            TileConfig::ideal(),
            TilingConfig { tile_rows: 8, tile_cols: 8 },
            &mut rng,
        )
        .unwrap();
        let mut r = StateReader::new(&bytes);
        let err = other.restore_state(&mut r).unwrap_err();
        assert!(matches!(err, SnapshotError::ShapeMismatch { .. }), "{err}");
    }
}
