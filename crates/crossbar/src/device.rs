//! Pulsed crosspoint device dynamics.
//!
//! Training on a resistive crossbar changes each device's conductance by a
//! small increment per voltage-pulse coincidence (paper Fig. 1, right).
//! The physics of that increment — its size, its dependence on the current
//! state, its up/down asymmetry, and its cycle-to-cycle randomness — is
//! what separates candidate technologies (Sec. II-B). [`PulsedDevice`]
//! captures all of it in one parametric model:
//!
//! ```text
//! Δw₊(w) = dw_up   · max(0, 1 − γ_up   · w / w_max)   + noise
//! Δw₋(w) = dw_down · max(0, 1 + γ_down · w / w_min)   + noise   (w_min < 0)
//! ```
//!
//! * `γ = 0` gives the ideal constant-step device of the original RPU
//!   specification \[14\].
//! * `γ = 1` gives fully saturating "soft bounds" — the shape measured on
//!   filamentary RRAM (paper Fig. 2).
//! * `dw_up ≠ dw_down` produces the up/down *asymmetry* that biases
//!   gradient accumulation and motivates zero-shifting \[30\] and the
//!   coupled-dynamics training algorithm \[35\].

use enw_numerics::rng::Rng64;

/// Direction of a programming pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PulseDir {
    /// Potentiation: conductance (weight) increase.
    Up,
    /// Depression: conductance (weight) decrease.
    Down,
}

impl PulseDir {
    /// The opposite direction.
    pub fn flipped(self) -> PulseDir {
        match self {
            PulseDir::Up => PulseDir::Down,
            PulseDir::Down => PulseDir::Up,
        }
    }
}

/// One materialized crosspoint device: concrete step sizes, bounds,
/// nonlinearity and noise for a single array position.
///
/// # Example
///
/// ```
/// use enw_crossbar::device::{PulseDir, PulsedDevice};
/// use enw_numerics::rng::Rng64;
///
/// let dev = PulsedDevice::ideal(1000); // 1000 states over [-1, 1]
/// let mut rng = Rng64::new(0);
/// let w1 = dev.pulse(0.0, PulseDir::Up, &mut rng);
/// assert!(w1 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulsedDevice {
    /// Mean weight increment of an up pulse evaluated at `w = 0`.
    pub dw_up: f32,
    /// Mean weight decrement magnitude of a down pulse at `w = 0`.
    pub dw_down: f32,
    /// Lower weight bound (negative).
    pub w_min: f32,
    /// Upper weight bound (positive).
    pub w_max: f32,
    /// Up-direction nonlinearity in `[0, 1]`: 0 = constant step,
    /// 1 = fully saturating soft bound.
    pub gamma_up: f32,
    /// Down-direction nonlinearity in `[0, 1]`.
    pub gamma_down: f32,
    /// Cycle-to-cycle write-noise σ, as a fraction of the mean step size.
    pub write_noise: f32,
    /// `false` for defective (stuck) devices that ignore pulses.
    pub responsive: bool,
}

impl PulsedDevice {
    /// An ideal symmetric constant-step device with `states` resolvable
    /// levels over `[-1, 1]` and no noise — the reference point of the RPU
    /// specification study.
    ///
    /// # Panics
    ///
    /// Panics if `states < 2`.
    pub fn ideal(states: u32) -> Self {
        assert!(states >= 2, "need at least two states");
        let dw = 2.0 / states as f32;
        PulsedDevice {
            dw_up: dw,
            dw_down: dw,
            w_min: -1.0,
            w_max: 1.0,
            gamma_up: 0.0,
            gamma_down: 0.0,
            write_noise: 0.0,
            responsive: true,
        }
    }

    /// Mean (noise-free) signed weight change of one pulse at state `w`.
    pub fn expected_step(&self, w: f32, dir: PulseDir) -> f32 {
        if !self.responsive {
            return 0.0;
        }
        match dir {
            PulseDir::Up => self.dw_up * (1.0 - self.gamma_up * w / self.w_max).max(0.0),
            // Down steps saturate toward w_min: the magnitude shrinks as w
            // approaches the lower bound (w/w_min → 1).
            PulseDir::Down => -self.dw_down * (1.0 - self.gamma_down * w / self.w_min).max(0.0),
        }
    }

    /// Applies one pulse and returns the new weight (bounded, noisy).
    pub fn pulse(&self, w: f32, dir: PulseDir, rng: &mut Rng64) -> f32 {
        if !self.responsive {
            return w;
        }
        let mut dw = self.expected_step(w, dir);
        if self.write_noise > 0.0 {
            let scale = 0.5 * (self.dw_up + self.dw_down);
            dw += (self.write_noise as f64 * scale as f64 * rng.normal()) as f32;
        }
        (w + dw).clamp(self.w_min, self.w_max)
    }

    /// The symmetry point `w*` where up and down steps have equal
    /// magnitude: under alternating up/down pulse pairs the weight
    /// converges here. Zero-shifting \[30\] measures this point and treats it
    /// as the logical zero.
    ///
    /// For a constant-step device (`γ = 0`) with equal step sizes this is
    /// `0`; with unequal steps and no state dependence there is no interior
    /// symmetry point and the relevant bound is returned.
    pub fn symmetry_point(&self) -> f32 {
        let denom =
            self.dw_up * self.gamma_up / self.w_max - self.dw_down * self.gamma_down / self.w_min;
        if denom.abs() < 1e-12 {
            // No state dependence: fixed point is wherever steps balance.
            return match self.dw_up.partial_cmp(&self.dw_down) {
                Some(std::cmp::Ordering::Greater) => self.w_max,
                Some(std::cmp::Ordering::Less) => self.w_min,
                _ => 0.0,
            };
        }
        ((self.dw_up - self.dw_down) / denom).clamp(self.w_min, self.w_max)
    }

    /// Up/down asymmetry at `w = 0`:
    /// `(dw_up − dw_down) / (dw_up + dw_down)` ∈ `(-1, 1)`.
    pub fn asymmetry(&self) -> f32 {
        (self.dw_up - self.dw_down) / (self.dw_up + self.dw_down)
    }

    /// Average granularity relative to the full weight range — the paper's
    /// "~0.1 % of the conductance range" requirement.
    pub fn relative_granularity(&self) -> f32 {
        0.5 * (self.dw_up + self.dw_down) / (self.w_max - self.w_min)
    }
}

/// A *specification* for a population of devices: a base device plus
/// device-to-device variability. Materializing the spec for each array
/// position yields the per-device parameter spread real arrays exhibit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Nominal device parameters.
    pub base: PulsedDevice,
    /// Relative σ of per-device step-size variation (device-to-device).
    pub dw_variability: f32,
    /// Relative σ of per-device bound variation.
    pub bound_variability: f32,
}

impl DeviceSpec {
    /// A spec with no device-to-device variation.
    pub fn uniform(base: PulsedDevice) -> Self {
        DeviceSpec { base, dw_variability: 0.0, bound_variability: 0.0 }
    }

    /// Draws one concrete device.
    pub fn materialize(&self, rng: &mut Rng64) -> PulsedDevice {
        let mut d = self.base;
        if self.dw_variability > 0.0 {
            // Log-normal-ish positive scaling keeps steps positive.
            let s_up = (1.0 + self.dw_variability as f64 * rng.normal()).max(0.05);
            let s_dn = (1.0 + self.dw_variability as f64 * rng.normal()).max(0.05);
            d.dw_up *= s_up as f32;
            d.dw_down *= s_dn as f32;
        }
        if self.bound_variability > 0.0 {
            let s_max = (1.0 + self.bound_variability as f64 * rng.normal()).max(0.1);
            let s_min = (1.0 + self.bound_variability as f64 * rng.normal()).max(0.1);
            d.w_max *= s_max as f32;
            d.w_min *= s_min as f32;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_device_steps_symmetric() {
        let d = PulsedDevice::ideal(1000);
        assert!((d.expected_step(0.0, PulseDir::Up) - 0.002).abs() < 1e-7);
        assert!((d.expected_step(0.0, PulseDir::Down) + 0.002).abs() < 1e-7);
        assert_eq!(d.asymmetry(), 0.0);
        assert_eq!(d.symmetry_point(), 0.0);
    }

    #[test]
    fn pulses_respect_bounds() {
        let d = PulsedDevice::ideal(10); // coarse: dw = 0.2
        let mut rng = Rng64::new(1);
        let mut w = 0.9;
        for _ in 0..20 {
            w = d.pulse(w, PulseDir::Up, &mut rng);
        }
        assert!(w <= d.w_max);
        for _ in 0..100 {
            w = d.pulse(w, PulseDir::Down, &mut rng);
        }
        assert!(w >= d.w_min);
    }

    #[test]
    fn soft_bounds_shrink_step_near_max() {
        let d = PulsedDevice { gamma_up: 1.0, ..PulsedDevice::ideal(100) };
        let near_max = d.expected_step(0.9, PulseDir::Up);
        let at_zero = d.expected_step(0.0, PulseDir::Up);
        assert!(near_max < at_zero * 0.2);
        // At the bound the step vanishes entirely.
        assert!(d.expected_step(1.0, PulseDir::Up).abs() < 1e-7);
    }

    #[test]
    fn symmetry_point_of_asymmetric_soft_bounds() {
        // dw_up twice dw_down with full soft bounds: symmetry point is
        // where dw_up(1 - w) = dw_down(1 + w) → w = 1/3.
        let d = PulsedDevice {
            dw_up: 0.02,
            dw_down: 0.01,
            gamma_up: 1.0,
            gamma_down: 1.0,
            ..PulsedDevice::ideal(100)
        };
        assert!((d.symmetry_point() - 1.0 / 3.0).abs() < 1e-5);
        // At w*, up and down steps must cancel.
        let w = d.symmetry_point();
        let net = d.expected_step(w, PulseDir::Up) + d.expected_step(w, PulseDir::Down);
        assert!(net.abs() < 1e-7);
    }

    #[test]
    fn alternating_pulses_converge_to_symmetry_point() {
        let d = PulsedDevice {
            dw_up: 0.04,
            dw_down: 0.02,
            gamma_up: 1.0,
            gamma_down: 1.0,
            ..PulsedDevice::ideal(50)
        };
        let mut rng = Rng64::new(2);
        let mut w = -0.8;
        for _ in 0..2000 {
            w = d.pulse(w, PulseDir::Up, &mut rng);
            w = d.pulse(w, PulseDir::Down, &mut rng);
        }
        assert!((w - d.symmetry_point()).abs() < 0.05, "w {w} vs {}", d.symmetry_point());
    }

    #[test]
    fn stuck_device_ignores_pulses() {
        let d = PulsedDevice { responsive: false, ..PulsedDevice::ideal(100) };
        let mut rng = Rng64::new(3);
        assert_eq!(d.pulse(0.25, PulseDir::Up, &mut rng), 0.25);
        assert_eq!(d.expected_step(0.25, PulseDir::Up), 0.0);
    }

    #[test]
    fn write_noise_produces_spread() {
        let d = PulsedDevice { write_noise: 1.0, ..PulsedDevice::ideal(100) };
        let mut rng = Rng64::new(4);
        let a = d.pulse(0.0, PulseDir::Up, &mut rng);
        let b = d.pulse(0.0, PulseDir::Up, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn materialized_devices_vary() {
        let spec = DeviceSpec {
            base: PulsedDevice::ideal(100),
            dw_variability: 0.3,
            bound_variability: 0.1,
        };
        let mut rng = Rng64::new(5);
        let a = spec.materialize(&mut rng);
        let b = spec.materialize(&mut rng);
        assert_ne!(a.dw_up, b.dw_up);
        assert!(a.dw_up > 0.0 && b.dw_up > 0.0);
    }

    #[test]
    fn uniform_spec_is_exact() {
        let spec = DeviceSpec::uniform(PulsedDevice::ideal(100));
        let mut rng = Rng64::new(6);
        assert_eq!(spec.materialize(&mut rng), spec.base);
    }

    #[test]
    fn relative_granularity_matches_states() {
        let d = PulsedDevice::ideal(1000);
        assert!((d.relative_granularity() - 0.001).abs() < 1e-6);
    }

    #[test]
    fn constant_step_unequal_rates_saturate_at_bound() {
        let d = PulsedDevice { dw_up: 0.03, ..PulsedDevice::ideal(100) };
        assert_eq!(d.symmetry_point(), d.w_max);
    }
}
