//! 2T-1FeFET hybrid-precision weight cells (paper Sec. II-B3, ref. \[38\]).
//!
//! A single FeFET switches in coarse, asymmetric polarization-domain steps
//! and wears out after 10⁶–10⁹ program cycles. The 2T-1FeFET cell pairs it
//! with a volatile capacitor: the capacitor absorbs the frequent
//! lower-significance updates with fine, symmetric steps, and its
//! accumulated value transfers to the FeFET (in coarse quanta) only when a
//! threshold is crossed — the same mixed-precision idea demonstrated for
//! PCM \[24\]. This reduces FeFET write traffic by orders of magnitude,
//! directly addressing the endurance limit.

use crate::device::{PulseDir, PulsedDevice};
use enw_numerics::rng::Rng64;

/// Configuration of a 2T-1FeFET hybrid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridCellConfig {
    /// The nonvolatile FeFET device (coarse, asymmetric).
    pub fefet: PulsedDevice,
    /// Capacitor step size (fine, symmetric).
    pub cap_step: f32,
    /// Capacitor range: `w_fast ∈ [-cap_range, cap_range]`.
    pub cap_range: f32,
    /// Transfer to the FeFET when `|w_fast|` exceeds this value.
    pub transfer_threshold: f32,
    /// Capacitor leakage per [`HybridCell::tick`] (volatile storage decays).
    pub cap_leak: f32,
    /// Program cycles after which the FeFET's steps start degrading.
    pub endurance: u64,
}

impl Default for HybridCellConfig {
    fn default() -> Self {
        let fefet = PulsedDevice {
            dw_up: 0.0125,
            dw_down: 0.008,
            w_min: -1.0,
            w_max: 1.0,
            gamma_up: 0.7,
            gamma_down: 0.7,
            write_noise: 0.4,
            responsive: true,
        };
        HybridCellConfig {
            fefet,
            cap_step: 0.0005,
            cap_range: 0.05,
            transfer_threshold: 0.02,
            cap_leak: 1e-4,
            endurance: 1_000_000,
        }
    }
}

/// A 2T-1FeFET mixed-precision weight cell.
///
/// # Example
///
/// ```
/// use enw_crossbar::devices::fefet::HybridCell;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut cell = HybridCell::new(Default::default());
/// for _ in 0..100 {
///     cell.pulse_up(&mut rng);
/// }
/// assert!(cell.weight() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridCell {
    cfg: HybridCellConfig,
    w_slow: f32,
    w_fast: f32,
    fefet_writes: u64,
}

impl HybridCell {
    /// A zero-initialized cell.
    pub fn new(cfg: HybridCellConfig) -> Self {
        HybridCell { cfg, w_slow: 0.0, w_fast: 0.0, fefet_writes: 0 }
    }

    /// Effective weight `w_slow + w_fast`.
    pub fn weight(&self) -> f32 {
        self.w_slow + self.w_fast
    }

    /// Nonvolatile (FeFET) component alone — what survives a power cycle.
    pub fn nonvolatile_weight(&self) -> f32 {
        self.w_slow
    }

    /// Total FeFET program pulses issued so far.
    pub fn fefet_writes(&self) -> u64 {
        self.fefet_writes
    }

    /// Returns `true` once the FeFET has exceeded its rated endurance.
    pub fn worn_out(&self) -> bool {
        self.fefet_writes > self.cfg.endurance
    }

    fn effective_fefet(&self) -> PulsedDevice {
        let mut d = self.cfg.fefet;
        if self.worn_out() {
            // Past rated endurance the polarization window collapses; model
            // as step sizes shrinking with the excess write count.
            let excess = self.fefet_writes as f64 / self.cfg.endurance as f64;
            let derate = (1.0 / excess).min(1.0) as f32;
            d.dw_up *= derate;
            d.dw_down *= derate;
        }
        d
    }

    /// One fine update pulse in the up direction (to the capacitor).
    pub fn pulse_up(&mut self, rng: &mut Rng64) {
        self.apply_fast(self.cfg.cap_step, rng);
    }

    /// One fine update pulse in the down direction (to the capacitor).
    pub fn pulse_down(&mut self, rng: &mut Rng64) {
        self.apply_fast(-self.cfg.cap_step, rng);
    }

    fn apply_fast(&mut self, step: f32, rng: &mut Rng64) {
        self.w_fast = (self.w_fast + step).clamp(-self.cfg.cap_range, self.cfg.cap_range);
        if self.w_fast.abs() >= self.cfg.transfer_threshold {
            self.transfer(rng);
        }
    }

    /// Transfers the accumulated capacitor value to the FeFET in coarse
    /// device pulses, subtracting what was actually written.
    ///
    /// A worn-out FeFET whose step has collapsed below 1 % of its rated
    /// step can no longer absorb transfers; the capacitor value then stays
    /// put (and leaks), which is the observable failure mode of exceeding
    /// endurance.
    pub fn transfer(&mut self, rng: &mut Rng64) {
        let dev = self.effective_fefet();
        let dir = if self.w_fast > 0.0 { PulseDir::Up } else { PulseDir::Down };
        let step = 0.5 * (dev.dw_up + dev.dw_down);
        let rated = 0.5 * (self.cfg.fefet.dw_up + self.cfg.fefet.dw_down);
        if step <= rated * 0.01 {
            return; // device too degraded to program
        }
        let pulses = (self.w_fast.abs() / step).floor() as usize;
        for _ in 0..pulses {
            self.w_slow = dev.pulse(self.w_slow, dir, rng);
            self.fefet_writes += 1;
            // Subtract the *intended* quantum; device nonidealities remain
            // as residual error, exactly as in the mixed-precision scheme.
            self.w_fast -= step * if dir == PulseDir::Up { 1.0 } else { -1.0 };
        }
    }

    /// Advances volatile-decay time by one unit: the capacitor leaks
    /// toward zero.
    pub fn tick(&mut self) {
        self.w_fast -= self.w_fast.signum() * self.cfg.cap_leak.min(self.w_fast.abs());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> HybridCellConfig {
        let mut cfg = HybridCellConfig::default();
        cfg.fefet.write_noise = 0.0;
        cfg
    }

    #[test]
    fn accumulates_fine_updates() {
        let mut rng = Rng64::new(1);
        let mut c = HybridCell::new(quiet_cfg());
        for _ in 0..20 {
            c.pulse_up(&mut rng);
        }
        assert!(c.weight() > 0.005);
    }

    #[test]
    fn transfer_moves_value_to_fefet() {
        let mut rng = Rng64::new(2);
        let mut c = HybridCell::new(quiet_cfg());
        for _ in 0..200 {
            c.pulse_up(&mut rng);
        }
        assert!(c.nonvolatile_weight() > 0.0, "nothing transferred");
        assert!(c.fefet_writes() > 0);
    }

    #[test]
    fn fefet_writes_far_fewer_than_updates() {
        // The whole point of the hybrid cell: most updates stay on the
        // capacitor.
        let mut rng = Rng64::new(3);
        let mut c = HybridCell::new(quiet_cfg());
        let updates = 10_000;
        for i in 0..updates {
            if i % 2 == 0 {
                c.pulse_up(&mut rng);
            } else {
                c.pulse_down(&mut rng);
            }
        }
        assert!(
            c.fefet_writes() < updates / 10,
            "fefet saw {} writes for {updates} updates",
            c.fefet_writes()
        );
    }

    #[test]
    fn net_weight_tracks_signed_sum() {
        let mut rng = Rng64::new(4);
        let mut c = HybridCell::new(quiet_cfg());
        // 300 net up pulses.
        for _ in 0..400 {
            c.pulse_up(&mut rng);
        }
        for _ in 0..100 {
            c.pulse_down(&mut rng);
        }
        let expected = 300.0 * c.cfg.cap_step;
        assert!((c.weight() - expected).abs() < expected * 0.5, "{} vs {expected}", c.weight());
    }

    #[test]
    fn capacitor_leaks_but_fefet_does_not() {
        let mut rng = Rng64::new(5);
        let mut c = HybridCell::new(quiet_cfg());
        for _ in 0..200 {
            c.pulse_up(&mut rng);
        }
        let nv = c.nonvolatile_weight();
        for _ in 0..100_000 {
            c.tick();
        }
        assert_eq!(c.nonvolatile_weight(), nv);
        assert!(c.weight() - nv < 1e-4, "capacitor failed to leak");
    }

    #[test]
    fn wearout_derates_steps() {
        let mut cfg = quiet_cfg();
        cfg.endurance = 10;
        let mut c = HybridCell::new(cfg);
        let mut rng = Rng64::new(6);
        for _ in 0..5000 {
            c.pulse_up(&mut rng);
        }
        assert!(c.worn_out());
    }
}
