//! Technology presets for the candidate crosspoint devices of paper
//! Sec. II-B, plus the device structures that do not fit the generic
//! bidirectional pulse model (PCM differential pairs, 2T-1FeFET hybrid
//! cells).
//!
//! The numeric parameters are behavioural: they reproduce the published
//! qualitative characteristics (step count, asymmetry, noise,
//! device-to-device spread) that the paper discusses, not any specific
//! wafer's measurements.

pub mod fefet;
pub mod pcm;

use crate::device::{DeviceSpec, PulsedDevice};

/// Ideal symmetric RPU reference device: `states` resolvable levels,
/// constant step, no noise or variability. The baseline of the
/// device-requirement study \[14\].
pub fn ideal(states: u32) -> DeviceSpec {
    DeviceSpec::uniform(PulsedDevice::ideal(states))
}

/// An ideal device with added cycle-to-cycle write noise (σ as a fraction
/// of the step size) and device-to-device step variability.
pub fn noisy_ideal(states: u32, write_noise: f32, d2d: f32) -> DeviceSpec {
    DeviceSpec {
        base: PulsedDevice { write_noise, ..PulsedDevice::ideal(states) },
        dw_variability: d2d,
        bound_variability: d2d / 2.0,
    }
}

/// Filamentary oxide RRAM (paper Sec. II-B2, Fig. 2): bidirectional but
/// strongly asymmetric, saturating soft bounds, large cycle-to-cycle
/// stochasticity from the atomistic filament dynamics, and substantial
/// device-to-device spread.
pub fn rram() -> DeviceSpec {
    DeviceSpec {
        base: PulsedDevice {
            dw_up: 0.004,   // ~500 potentiation steps over the range
            dw_down: 0.002, // depression markedly weaker
            w_min: -1.0,
            w_max: 1.0,
            gamma_up: 0.9,
            gamma_down: 0.9,
            write_noise: 0.6,
            responsive: true,
        },
        dw_variability: 0.3,
        bound_variability: 0.15,
    }
}

/// RRAM after carefully optimized 1T1R pulse conditions \[34\]: better
/// symmetry and linearity at the cost of signal-to-noise ratio.
pub fn rram_optimized() -> DeviceSpec {
    DeviceSpec {
        base: PulsedDevice {
            dw_up: 0.0025,
            dw_down: 0.002,
            w_min: -1.0,
            w_max: 1.0,
            gamma_up: 0.4,
            gamma_down: 0.4,
            write_noise: 1.0, // symmetry traded for SNR
            responsive: true,
        },
        dw_variability: 0.2,
        bound_variability: 0.1,
    }
}

/// TiN/HfO₂/TiN ferroelectric tunnel junction (paper Sec. II-B3,
/// ref. \[40\]): a two-terminal, CMOS-compatible bidirectional device.
/// Polarization-controlled tunneling gives analog tuning, but with
/// asymmetric updates and substantial stochasticity from the mixed
/// ferroelectric domain state.
pub fn ftj() -> DeviceSpec {
    DeviceSpec {
        base: PulsedDevice {
            dw_up: 0.008, // ~250 states
            dw_down: 0.005,
            w_min: -1.0,
            w_max: 1.0,
            gamma_up: 0.8,
            gamma_down: 0.8,
            write_noise: 0.5,
            responsive: true,
        },
        dw_variability: 0.3,
        bound_variability: 0.15,
    }
}

/// Three-terminal metal-oxide ECRAM (paper Sec. II-B4): ~1000 highly
/// symmetric up/down steps with excellent SNR thanks to the separation of
/// read and write paths.
pub fn ecram() -> DeviceSpec {
    DeviceSpec {
        base: PulsedDevice {
            dw_up: 0.002,
            dw_down: 0.002,
            w_min: -1.0,
            w_max: 1.0,
            gamma_up: 0.15,
            gamma_down: 0.15,
            write_noise: 0.05,
            responsive: true,
        },
        dw_variability: 0.05,
        bound_variability: 0.05,
    }
}

/// ECRAM driven by *voltage* pulses instead of gate-current control
/// (paper Sec. II-B4): the compliance transistor disappears (a more
/// compact cell), but the nonzero open-circuit potential of demonstrated
/// devices produces asymmetric update characteristics and extra noise —
/// the trade-off the paper describes verbatim.
pub fn ecram_voltage() -> DeviceSpec {
    DeviceSpec {
        base: PulsedDevice {
            dw_up: 0.0026,
            dw_down: 0.0016, // open-circuit potential skews depression
            w_min: -1.0,
            w_max: 1.0,
            gamma_up: 0.4,
            gamma_down: 0.4,
            write_noise: 0.3,
            responsive: true,
        },
        dw_variability: 0.1,
        bound_variability: 0.05,
    }
}

/// Single FeFET synapse (paper Sec. II-B3): faster and lower-voltage than
/// Flash but with RRAM-like asymmetric updates; endurance and retention
/// are handled by the hybrid cell in [`fefet`].
pub fn fefet_single() -> DeviceSpec {
    DeviceSpec {
        base: PulsedDevice {
            dw_up: 0.0125, // ~160 states: polarization domains are coarse
            dw_down: 0.008,
            w_min: -1.0,
            w_max: 1.0,
            gamma_up: 0.7,
            gamma_down: 0.7,
            write_noise: 0.4,
            responsive: true,
        },
        dw_variability: 0.25,
        bound_variability: 0.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rram_is_asymmetric_and_noisy() {
        let d = rram().base;
        assert!(d.asymmetry() > 0.2);
        assert!(d.write_noise > 0.3);
    }

    #[test]
    fn ecram_is_nearly_symmetric() {
        let d = ecram().base;
        assert!(d.asymmetry().abs() < 0.01);
        assert!(d.write_noise < 0.1);
        // ~1000 steps → 0.1% granularity, meeting the RPU spec.
        assert!((d.relative_granularity() - 0.001).abs() < 2e-4);
    }

    #[test]
    fn presets_have_interior_symmetry_points() {
        for spec in [rram(), rram_optimized(), ecram(), ecram_voltage(), fefet_single(), ftj()] {
            let sp = spec.base.symmetry_point();
            assert!(sp > spec.base.w_min && sp < spec.base.w_max, "sp {sp}");
        }
    }

    #[test]
    fn ideal_matches_device_ideal() {
        assert_eq!(ideal(1000).base, PulsedDevice::ideal(1000));
    }

    #[test]
    fn optimized_rram_less_asymmetric_than_raw() {
        assert!(rram_optimized().base.asymmetry() < rram().base.asymmetry());
    }

    #[test]
    fn voltage_controlled_ecram_trades_symmetry_for_compactness() {
        // Current-controlled ECRAM is nearly symmetric; the voltage-pulsed
        // variant pays an asymmetry penalty (open-circuit potential).
        assert!(ecram_voltage().base.asymmetry() > 5.0 * ecram().base.asymmetry().abs());
    }

    #[test]
    fn ftj_is_bidirectional_but_rough() {
        let d = ftj().base;
        assert!(d.asymmetry() > 0.1, "FTJ updates are asymmetric");
        assert!(d.write_noise >= 0.4, "FTJ switching is stochastic");
        // Bidirectional: both steps nonzero at w = 0.
        assert!(d.expected_step(0.0, crate::device::PulseDir::Up) > 0.0);
        assert!(d.expected_step(0.0, crate::device::PulseDir::Down) < 0.0);
    }
}
