//! Phase-change memory differential pairs with resistance drift (paper
//! Sec. II-B1).
//!
//! PCM conductance can only be *increased* incrementally (progressive
//! crystallization); erasing is an abrupt melt-quench reset. Signed weights
//! therefore need a differential pair `w = G⁺ − G⁻`, both members of which
//! crystallize toward saturation and must periodically be reset while
//! preserving their difference \[18\]. The amorphous phase additionally
//! relaxes over time, dropping conductance as `G(t) ∝ (t/t₀)^{−ν}`
//! (resistance drift); a metallic "projection" liner shunts the read
//! current around the amorphous region and suppresses ν by roughly an
//! order of magnitude \[26\]\[27\].

use enw_numerics::rng::Rng64;

/// Configuration of a PCM differential pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcmConfig {
    /// Mean conductance increment per SET pulse at `g = 0` (normalized
    /// conductance units; full range is `[0, 1]`).
    pub dg: f32,
    /// Cycle-to-cycle noise σ as a fraction of `dg` (crystallization is
    /// stochastic).
    pub write_noise: f32,
    /// Mean drift exponent ν (unitless; ~0.05 for a bare mushroom cell,
    /// ~0.005 with a projection liner).
    pub drift_nu: f64,
    /// Device-to-device σ of the drift exponent, as a fraction of
    /// `drift_nu`. The *dispersion* of ν (not its mean) is what degrades
    /// deployed networks: a uniform conductance scale factors out of an
    /// argmax, per-device spread does not.
    pub drift_nu_sigma: f64,
    /// Conductance level above which a pair member triggers an automatic
    /// refresh (reset preserving the difference).
    pub refresh_threshold: f32,
}

impl PcmConfig {
    /// A bare (unlined) analog PCM cell.
    pub fn bare() -> Self {
        PcmConfig {
            dg: 0.01,
            write_noise: 0.3,
            drift_nu: 0.05,
            drift_nu_sigma: 0.2,
            refresh_threshold: 0.9,
        }
    }

    /// A projected-PCM cell: the metallic liner leaves programming
    /// behaviour unchanged but suppresses drift ~10×.
    pub fn projected() -> Self {
        PcmConfig { drift_nu: 0.005, ..PcmConfig::bare() }
    }
}

impl Default for PcmConfig {
    fn default() -> Self {
        PcmConfig::bare()
    }
}

/// A differential PCM weight: two unidirectional conductances and their
/// programming times (for drift).
///
/// # Example
///
/// ```
/// use enw_crossbar::devices::pcm::{PcmConfig, PcmPair};
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut pair = PcmPair::new(PcmConfig::bare());
/// pair.update(0.05, &mut rng); // program a positive weight increment
/// assert!(pair.weight(1.0) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcmPair {
    cfg: PcmConfig,
    /// This pair's materialized drift exponent.
    nu: f64,
    g_plus: f32,
    g_minus: f32,
    /// Time at which each conductance was last programmed (drift clock
    /// origin), in the caller's time unit.
    t_prog_plus: f64,
    t_prog_minus: f64,
    refresh_count: u64,
}

/// Reference time offset so `t = t_prog` gives drift factor 1.
const DRIFT_T0: f64 = 1.0;

impl PcmPair {
    /// A fresh pair with both conductances at zero, programmed at `t = 0`,
    /// using the *mean* drift exponent exactly.
    pub fn new(cfg: PcmConfig) -> Self {
        PcmPair {
            cfg,
            nu: cfg.drift_nu,
            g_plus: 0.0,
            g_minus: 0.0,
            t_prog_plus: 0.0,
            t_prog_minus: 0.0,
            refresh_count: 0,
        }
    }

    /// A fresh pair with its drift exponent drawn from the
    /// device-to-device distribution (truncated at zero).
    pub fn new_with(cfg: PcmConfig, rng: &mut Rng64) -> Self {
        let nu = (cfg.drift_nu * (1.0 + cfg.drift_nu_sigma * rng.normal())).max(0.0);
        PcmPair { cfg, nu, ..PcmPair::new(cfg) }
    }

    /// This pair's materialized drift exponent.
    pub fn drift_nu(&self) -> f64 {
        self.nu
    }

    /// Raw stored conductances `(G⁺, G⁻)` ignoring drift.
    pub fn conductances(&self) -> (f32, f32) {
        (self.g_plus, self.g_minus)
    }

    /// Number of refresh (reset) events so far.
    pub fn refresh_count(&self) -> u64 {
        self.refresh_count
    }

    fn drifted(&self, g: f32, t_prog: f64, now: f64) -> f32 {
        if g <= 0.0 {
            return 0.0;
        }
        let age = (now - t_prog).max(0.0);
        (g as f64 * ((age + DRIFT_T0) / DRIFT_T0).powf(-self.nu)) as f32
    }

    /// The signed weight read at time `now`, including drift of both
    /// members.
    pub fn weight(&self, now: f64) -> f32 {
        self.drifted(self.g_plus, self.t_prog_plus, now)
            - self.drifted(self.g_minus, self.t_prog_minus, now)
    }

    /// Applies one SET pulse to the `G⁺` (if `up`) or `G⁻` member at time
    /// `now`. Crystallization saturates: the increment shrinks as the
    /// conductance approaches full scale.
    pub fn pulse_at(&mut self, up: bool, now: f64, rng: &mut Rng64) {
        let (g, t_prog) = if up {
            (&mut self.g_plus, &mut self.t_prog_plus)
        } else {
            (&mut self.g_minus, &mut self.t_prog_minus)
        };
        let mut dg = self.cfg.dg * (1.0 - *g);
        if self.cfg.write_noise > 0.0 {
            dg += (self.cfg.write_noise as f64 * self.cfg.dg as f64 * rng.normal()) as f32;
        }
        *g = (*g + dg.max(0.0)).clamp(0.0, 1.0);
        *t_prog = now;
        if self.g_plus > self.cfg.refresh_threshold || self.g_minus > self.cfg.refresh_threshold {
            self.refresh(now);
        }
    }

    /// Applies a signed weight increment at `t = now` as the appropriate
    /// number of SET pulses on the appropriate pair member.
    pub fn update_at(&mut self, delta: f32, now: f64, rng: &mut Rng64) {
        let pulses = (delta.abs() / self.cfg.dg).round() as usize;
        for _ in 0..pulses {
            self.pulse_at(delta > 0.0, now, rng);
        }
    }

    /// Convenience: [`PcmPair::update_at`] at `t = 0`.
    pub fn update(&mut self, delta: f32, rng: &mut Rng64) {
        self.update_at(delta, 0.0, rng);
    }

    /// Melt-quench reset of both members, re-programming only the
    /// difference — the periodic "simultaneous reset maintaining the
    /// difference" of \[18\].
    pub fn refresh(&mut self, now: f64) {
        let w = self.weight(now);
        self.g_plus = w.max(0.0);
        self.g_minus = (-w).max(0.0);
        self.t_prog_plus = now;
        self.t_prog_minus = now;
        self.refresh_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(cfg: PcmConfig) -> PcmConfig {
        PcmConfig { write_noise: 0.0, ..cfg }
    }

    #[test]
    fn positive_update_raises_weight() {
        let mut rng = Rng64::new(1);
        let mut p = PcmPair::new(quiet(PcmConfig::bare()));
        p.update(0.1, &mut rng);
        assert!(p.weight(0.0) > 0.05);
    }

    #[test]
    fn negative_update_uses_g_minus() {
        let mut rng = Rng64::new(2);
        let mut p = PcmPair::new(quiet(PcmConfig::bare()));
        p.update(-0.1, &mut rng);
        let (gp, gm) = p.conductances();
        assert_eq!(gp, 0.0);
        assert!(gm > 0.0);
        assert!(p.weight(0.0) < 0.0);
    }

    #[test]
    fn signed_sequence_tracks_target() {
        // Alternating +/− updates must track their running sum even though
        // each member only ever increases.
        let mut rng = Rng64::new(3);
        let mut p = PcmPair::new(quiet(PcmConfig::bare()));
        let deltas = [0.2f32, -0.1, 0.15, -0.3, 0.1];
        let mut target = 0.0f32;
        for d in deltas {
            p.update(d, &mut rng);
            target += d;
        }
        assert!((p.weight(0.0) - target).abs() < 0.05, "{} vs {target}", p.weight(0.0));
    }

    #[test]
    fn refresh_preserves_weight_and_desaturates() {
        let mut rng = Rng64::new(4);
        let mut p = PcmPair::new(quiet(PcmConfig { refresh_threshold: 0.5, ..PcmConfig::bare() }));
        // Push both members up: weight stays small but conductances grow.
        for _ in 0..150 {
            p.update(0.02, &mut rng);
            p.update(-0.02, &mut rng);
        }
        assert!(p.refresh_count() > 0, "saturation never triggered refresh");
        let (gp, gm) = p.conductances();
        // Refresh fires the moment either member crosses the threshold, so
        // neither can have strayed more than one pulse beyond it.
        assert!(gp < 0.55 && gm < 0.55, "refresh failed to desaturate: {gp}, {gm}");
        assert!(p.weight(0.0).abs() < 0.1);
    }

    #[test]
    fn drift_decays_conductance() {
        let mut rng = Rng64::new(5);
        let mut p = PcmPair::new(quiet(PcmConfig::bare()));
        p.update(0.3, &mut rng);
        let w_now = p.weight(0.0);
        let w_later = p.weight(1e6);
        assert!(w_later < w_now * 0.8, "{w_later} vs {w_now}");
    }

    #[test]
    fn projection_liner_suppresses_drift() {
        let mut rng = Rng64::new(6);
        let mut bare = PcmPair::new(quiet(PcmConfig::bare()));
        let mut lined = PcmPair::new(quiet(PcmConfig::projected()));
        bare.update(0.3, &mut rng);
        lined.update(0.3, &mut rng);
        let loss_bare = 1.0 - bare.weight(1e6) / bare.weight(0.0);
        let loss_lined = 1.0 - lined.weight(1e6) / lined.weight(0.0);
        assert!(loss_lined < loss_bare / 5.0, "bare {loss_bare}, lined {loss_lined}");
    }

    #[test]
    fn materialized_drift_exponents_vary() {
        let mut rng = Rng64::new(9);
        let a = PcmPair::new_with(PcmConfig::bare(), &mut rng);
        let b = PcmPair::new_with(PcmConfig::bare(), &mut rng);
        assert_ne!(a.drift_nu(), b.drift_nu());
        assert!(a.drift_nu() >= 0.0 && b.drift_nu() >= 0.0);
    }

    #[test]
    fn exact_constructor_uses_mean_nu() {
        let p = PcmPair::new(PcmConfig::bare());
        assert_eq!(p.drift_nu(), PcmConfig::bare().drift_nu);
    }

    #[test]
    fn crystallization_saturates() {
        let mut rng = Rng64::new(7);
        let mut p = PcmPair::new(quiet(PcmConfig { refresh_threshold: 2.0, ..PcmConfig::bare() }));
        let mut prev = 0.0;
        let mut steps = Vec::new();
        for _ in 0..200 {
            p.pulse_at(true, 0.0, &mut rng);
            let g = p.conductances().0;
            steps.push(g - prev);
            prev = g;
        }
        assert!(steps[199] < steps[0] * 0.5, "no saturation: {} vs {}", steps[199], steps[0]);
        assert!(p.conductances().0 <= 1.0);
    }
}
