//! The analog tile: a crossbar array plus its periphery, exposed through
//! the `enw-nn` [`LinearBackend`] trait so that whole networks train on
//! simulated hardware unmodified.
//!
//! A tile performs the three crossbar cycles of paper Fig. 1:
//!
//! * **Forward** — DAC-quantized inputs on the columns, currents summed per
//!   row, read noise added, ADC-quantized output.
//! * **Backward** — the transposed read, same periphery.
//! * **Update** — the parallel stochastic pulse scheme of \[14\]: rows and
//!   columns fire independent Bernoulli pulse trains of length `BL`;
//!   every coincidence steps the device at that crosspoint once. The
//!   expected step equals the SGD rank-1 update while touching each device
//!   `O(BL)` times independent of array size.

use crate::array::AnalogArray;
use crate::device::{DeviceSpec, PulseDir};
use crate::error::CrossbarError;
use crate::noise::AnalogNoise;
use enw_nn::backend::LinearBackend;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::{Rng64, RngState};

/// Fixed row-chunk size for the parallel stochastic update; boundaries
/// depend only on the array shape, never the worker count.
const PAR_UPDATE_ROW_CHUNK: usize = 16;

/// How the rank-1 update is realized on the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateScheme {
    /// Stochastic pulse trains of length `bl` (the hardware scheme).
    StochasticPulse {
        /// Pulse-train length (paper uses BL ≈ 10–100; 31 is typical).
        bl: u32,
    },
    /// Analytic expectation of the pulse scheme: one state-dependent step
    /// evaluation per crosspoint. Faster, preserves bounded/asymmetric
    /// dynamics, drops pulse-level stochasticity. For sweeps.
    MeanField,
}

/// Event counts for one tile (inputs to energy/latency models and the
/// O(1)-scaling experiment E1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Forward crossbar reads.
    pub forward_ops: u64,
    /// Backward (transposed) crossbar reads.
    pub backward_ops: u64,
    /// Rank-1 update operations.
    pub update_ops: u64,
    /// Device programming pulses actually fired.
    pub pulses: u64,
}

/// Tile configuration: periphery plus update realization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileConfig {
    /// Converter/noise model.
    pub noise: AnalogNoise,
    /// Update realization.
    pub update: UpdateScheme,
    /// Probability of suppressing an individual update coincidence —
    /// hardware-aware "drop-connect" training \[33\]. 0 disables.
    pub drop_connect: f32,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            noise: AnalogNoise::standard(),
            update: UpdateScheme::StochasticPulse { bl: 31 },
            drop_connect: 0.0,
        }
    }
}

impl TileConfig {
    /// An ideal tile: no converters, no noise, stochastic pulses.
    pub fn ideal() -> Self {
        TileConfig { noise: AnalogNoise::ideal(), ..TileConfig::default() }
    }

    /// Starts building a configuration; constraints are checked once at
    /// [`TileConfigBuilder::build`].
    pub fn builder() -> TileConfigBuilder {
        TileConfigBuilder::default()
    }
}

/// Builder for [`TileConfig`]: set what differs from the defaults
/// (standard noise, stochastic pulses with `bl = 31`, no drop-connect)
/// and let [`build`](TileConfigBuilder::build) validate the whole
/// configuration at once.
#[derive(Debug, Clone, Copy, Default)]
pub struct TileConfigBuilder {
    noise: Option<AnalogNoise>,
    update: Option<UpdateScheme>,
    drop_connect: f32,
}

impl TileConfigBuilder {
    /// Converter/noise model (default: [`AnalogNoise::standard`]).
    pub fn noise(mut self, noise: AnalogNoise) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Update realization (default: stochastic pulses, `bl = 31`).
    pub fn update(mut self, update: UpdateScheme) -> Self {
        self.update = Some(update);
        self
    }

    /// Probability of suppressing an update coincidence (default 0).
    pub fn drop_connect(mut self, p: f32) -> Self {
        self.drop_connect = p;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<TileConfig, CrossbarError> {
        let defaults = TileConfig::default();
        let update = self.update.unwrap_or(defaults.update);
        if let UpdateScheme::StochasticPulse { bl } = update {
            if bl == 0 {
                return Err(CrossbarError::InvalidConfig {
                    reason: "pulse-train length bl must be at least 1",
                });
            }
        }
        if !(0.0..1.0).contains(&self.drop_connect) {
            return Err(CrossbarError::InvalidConfig { reason: "drop_connect must lie in [0, 1)" });
        }
        Ok(TileConfig {
            noise: self.noise.unwrap_or(defaults.noise),
            update,
            drop_connect: self.drop_connect,
        })
    }
}

/// An analog crossbar tile of shape `out_dim × (in_dim + 1)` (one bias
/// column), implementing [`LinearBackend`].
///
/// # Example
///
/// ```
/// use enw_crossbar::devices;
/// use enw_crossbar::tile::{AnalogTile, TileConfig};
/// use enw_nn::backend::LinearBackend;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut tile = AnalogTile::new(8, 4, &devices::ideal(1000), TileConfig::ideal(), &mut rng);
/// let y = tile.forward(&[0.1, -0.2, 0.3, 0.4]);
/// assert_eq!(y.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct AnalogTile {
    array: AnalogArray,
    /// Zero-shift reference conductances (row-major), if calibrated.
    reference: Option<Vec<f32>>,
    cfg: TileConfig,
    in_dim: usize,
    /// Mean step size used to scale pulse probabilities.
    dw_avg: f32,
    rng: Rng64,
    stats: TileStats,
    /// Per-row RNG streams for the parallel stochastic update, refilled
    /// from the tile RNG on every update. Kept as a field so the
    /// steady-state training loop reuses its capacity instead of
    /// allocating per call; the contents are transient (fully rewritten
    /// before use) and excluded from checkpoints.
    row_rngs: Vec<Rng64>,
}

impl AnalogTile {
    /// Builds a tile over freshly materialized devices, weights at zero.
    pub fn new(
        out_dim: usize,
        in_dim: usize,
        spec: &DeviceSpec,
        cfg: TileConfig,
        rng: &mut Rng64,
    ) -> Self {
        let array = AnalogArray::new(out_dim, in_dim + 1, spec, rng);
        let dw_avg = 0.5 * (spec.base.dw_up + spec.base.dw_down);
        AnalogTile {
            array,
            reference: None,
            cfg,
            in_dim,
            dw_avg,
            rng: rng.fork(),
            stats: TileStats::default(),
            row_rngs: Vec::new(),
        }
    }

    /// Snapshot of the tile RNG for checkpointing. Together with the
    /// array's [`weights_raw`](AnalogArray::weights_raw) and
    /// [`pulse_count`](AnalogArray::pulse_count) this captures every
    /// bit of mutable tile state (the per-row update streams are
    /// transient — rewritten from this RNG before each use).
    pub fn rng_state(&self) -> RngState {
        self.rng.state()
    }

    /// Restores the tile RNG from a checkpoint snapshot.
    pub fn restore_rng(&mut self, state: RngState) {
        self.rng = Rng64::restore(state);
    }

    /// Restores the event counters from a checkpoint snapshot.
    pub fn restore_stats(&mut self, stats: TileStats) {
        self.stats = stats;
    }

    /// Write-verify programs the tile's *effective* weights to `target`
    /// (shape `out_dim × (in_dim + 1)`), accounting for any zero-shift
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the shape mismatches.
    pub fn program_effective(&mut self, target: &Matrix) {
        let physical = match &self.reference {
            None => target.clone(),
            Some(r) => {
                let mut t = target.clone();
                for row in 0..t.rows() {
                    for col in 0..t.cols() {
                        let v = t.at(row, col) + r[row * t.cols() + col];
                        t.set(row, col, v);
                    }
                }
                t
            }
        };
        let mut rng = self.rng.fork();
        self.array.program(&physical, self.dw_avg * 0.6, 4000, &mut rng);
        let cells = (self.array.rows() * self.array.cols()) as u64;
        // Program reads the full target image and rewrites every device.
        enw_trace::record_span_io("crossbar/program", cells, 4 * cells, 4 * cells);
    }

    /// Zero-shift calibration \[30\]: drives every device to its symmetry
    /// point, then records that state as the reference. Effective weights
    /// are zero afterwards; the symmetry point becomes the logical zero,
    /// so asymmetric devices decay toward 0 instead of a biased value.
    pub fn calibrate_zero_shift(&mut self, pairs: u32) {
        let mut rng = self.rng.fork();
        self.array.converge_to_symmetry(pairs, &mut rng);
        self.reference = Some(self.array.read_matrix().as_slice().to_vec());
    }

    /// Returns `true` if a zero-shift reference is installed.
    pub fn is_zero_shifted(&self) -> bool {
        self.reference.is_some()
    }

    /// Event counters.
    pub fn stats(&self) -> TileStats {
        self.stats
    }

    /// The underlying array (for defect injection and inspection).
    pub fn array_mut(&mut self) -> &mut AnalogArray {
        &mut self.array
    }

    /// The underlying array, shared.
    pub fn array(&self) -> &AnalogArray {
        &self.array
    }

    /// Subtracts the zero-shift reference product `R · x` from `y`
    /// in place (no-op without a calibrated reference). The reference
    /// term for each row accumulates in ascending-column order, exactly
    /// as the pre-`_into` per-call-buffer code did, so results are
    /// bit-identical.
    // enw:hot
    fn sub_reference_matvec(&self, x: &[f32], y: &mut [f32]) {
        if let Some(r) = &self.reference {
            let cols = self.array.cols();
            for (row, out) in y.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (c, xi) in x.iter().enumerate() {
                    acc += r[row * cols + c] * xi;
                }
                *out -= acc;
            }
        }
    }

    /// Transposed counterpart of
    /// [`sub_reference_matvec`](AnalogTile::sub_reference_matvec):
    /// subtracts `Rᵀ · d` from `y` in place, walking rows in ascending
    /// order like the serial reference read.
    // enw:hot
    fn sub_reference_matvec_t(&self, d: &[f32], y: &mut [f32]) {
        if let Some(r) = &self.reference {
            let cols = self.array.cols();
            let mut refp = enw_parallel::scratch::take_f32(cols);
            for (row, di) in d.iter().enumerate() {
                for (c, out) in refp.iter_mut().enumerate() {
                    *out += r[row * cols + c] * di;
                }
            }
            for (out, rp) in y.iter_mut().zip(refp.iter()) {
                *out -= rp;
            }
        }
    }

    /// Checks out a scratch buffer holding the bias-augmented input
    /// `[x; bias_drive]`, hoisting the old per-call `Vec` off the hot
    /// path. Monolithic use drives the bias line at 1.0; sub-tiles of a
    /// [`TiledAnalogLayer`](crate::tiled::TiledAnalogLayer) that do not
    /// own the logical bias drive it at 0.0, which silences their bias
    /// column in every cycle (zero forward contribution, zero pulse
    /// probability, no RNG draws).
    fn augmented_scratch(&self, x: &[f32], bias_drive: f32) -> enw_parallel::scratch::ScratchF32 {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let mut xa = enw_parallel::scratch::take_f32(self.in_dim + 1);
        xa[..self.in_dim].copy_from_slice(x);
        xa[self.in_dim] = bias_drive;
        xa
    }

    /// Sets a bit in a `u64`-limb scratch bitset.
    #[inline]
    fn set_bit(bits: &mut [u64], idx: usize) {
        bits[idx / 64] |= 1 << (idx % 64);
    }

    /// Reads a bit from a `u64`-limb scratch bitset.
    #[inline]
    fn get_bit(bits: &[u64], idx: usize) -> bool {
        bits[idx / 64] & (1 << (idx % 64)) != 0
    }

    fn update_stochastic(&mut self, delta: &[f32], xa: &[f32], lr: f32, bl: u32) {
        // Choose pulse probabilities so the expected coincidence count
        // yields the SGD step: E[Δw_ij] = −lr·d_i·x_j. All staging
        // buffers come from the scratch pools (and the per-row RNG
        // vector reuses its retained capacity), so a steady-state
        // training step performs no heap allocation here.
        let amp = (lr / (bl as f32 * self.dw_avg)).sqrt();
        let rows = delta.len();
        let cols = xa.len();
        let mut p_row = enw_parallel::scratch::take_f32(rows);
        for (p, d) in p_row.iter_mut().zip(delta) {
            *p = (amp * d.abs()).min(1.0);
        }
        let mut p_col = enw_parallel::scratch::take_f32(cols);
        for (p, x) in p_col.iter_mut().zip(xa) {
            *p = (amp * x.abs()).min(1.0);
        }
        // Phase 1 (serial): draw the row/column pulse trains for every
        // bit-line step with the tile RNG, exactly as the hardware fires
        // them — rows then columns per step. Row firings land in a limb
        // bitset; column firings are index lists flattened into one
        // scratch buffer (`col_fired[s*cols..]`, `col_count[s]` live).
        let bl = bl as usize;
        let mut row_fired = enw_parallel::scratch::take_bits((bl * rows).div_ceil(64));
        let mut col_fired = enw_parallel::scratch::take_usize(bl * cols);
        let mut col_count = enw_parallel::scratch::take_usize(bl);
        for s in 0..bl {
            for (i, &p) in p_row.iter().enumerate() {
                if p > 0.0 && self.rng.bernoulli(p as f64) {
                    Self::set_bit(&mut row_fired, s * rows + i);
                }
            }
            let step_cols = &mut col_fired[s * cols..(s + 1) * cols];
            let mut fired = 0;
            for (j, &p) in p_col.iter().enumerate() {
                if p > 0.0 && self.rng.bernoulli(p as f64) {
                    step_cols[fired] = j;
                    fired += 1;
                }
            }
            col_count[s] = fired;
        }
        // Phase 2 (parallel over rows): every coincidence on row i only
        // touches devices in row i, so rows are independent given their
        // own RNG stream. Forking one stream per row from the tile RNG
        // (serially, in row order) makes the result identical for any
        // worker count — and identical to running the loop serially.
        self.row_rngs.clear();
        for _ in 0..rows {
            let fork = self.rng.fork();
            self.row_rngs.push(fork);
        }
        let row_rngs = &self.row_rngs;
        let (row_fired, col_fired, col_count) = (&*row_fired, &*col_fired, &*col_count);
        let drop_connect = self.cfg.drop_connect;
        let pulses = self.array.par_pulse_by_row(PAR_UPDATE_ROW_CHUNK, |r, pulser| {
            let mut rng = row_rngs[r].clone();
            let di = delta[r];
            let mut fired = 0u64;
            for s in 0..bl {
                if !Self::get_bit(row_fired, s * rows + r) {
                    continue;
                }
                for &j in &col_fired[s * cols..s * cols + col_count[s]] {
                    if drop_connect > 0.0 && rng.bernoulli(drop_connect as f64) {
                        continue;
                    }
                    // Δw should be −lr·d·x: step up when d·x < 0.
                    let dir = if di * xa[j] < 0.0 { PulseDir::Up } else { PulseDir::Down };
                    pulser.pulse(j, dir, &mut rng);
                    fired += 1;
                }
            }
            fired
        });
        self.stats.pulses += pulses;
    }

    fn update_mean_field(&mut self, delta: &[f32], xa: &[f32], lr: f32) {
        for (i, &d) in delta.iter().enumerate() {
            if d == 0.0 {
                continue;
            }
            for (j, &x) in xa.iter().enumerate() {
                let target = -lr * d * x;
                if target == 0.0 {
                    continue;
                }
                let dir = if target > 0.0 { PulseDir::Up } else { PulseDir::Down };
                let n = target.abs() / self.dw_avg;
                // One state-dependent step evaluation scaled by the pulse
                // count; write noise scales with √n as for n i.i.d. pulses.
                let dev = *self.array.device(i, j);
                let mean = dev.expected_step(self.array.weight(i, j), dir) * n;
                let noise = if dev.write_noise > 0.0 && dev.responsive {
                    (dev.write_noise as f64
                        * self.dw_avg as f64
                        * (n as f64).sqrt()
                        * self.rng.normal()) as f32
                } else {
                    0.0
                };
                let w = self.array.weight(i, j);
                self.array.set_weight(i, j, w + mean + noise);
                self.stats.pulses += n.ceil() as u64;
            }
        }
    }
}

impl AnalogTile {
    /// [`forward_into`](LinearBackend::forward_into) with an explicit
    /// bias-line drive. The public trait method drives the bias at 1.0;
    /// [`TiledAnalogLayer`](crate::tiled::TiledAnalogLayer) drives it at
    /// 0.0 on every sub-tile except the ones owning the logical bias, so
    /// partial sums across column blocks add exactly one bias term per
    /// output row. With `bias_drive == 1.0` this is the identical code
    /// (and RNG) path as the monolithic forward.
    // enw:hot
    pub fn forward_biased_into(&mut self, x: &[f32], bias_drive: f32, out: &mut [f32]) {
        let mut xa = self.augmented_scratch(x, bias_drive);
        self.cfg.noise.apply_input(&mut xa);
        // Bit-identical to the serial read; parallel only above the
        // array-size threshold (see AnalogArray::par_matvec_into).
        self.array.par_matvec_into(&xa, self.cfg.noise.ir_drop, out);
        self.sub_reference_matvec(&xa, out);
        self.cfg.noise.apply_output(out, &mut self.rng);
        self.stats.forward_ops += 1;
        let (rows, cols) = (self.array.rows() as u64, self.array.cols() as u64);
        enw_trace::record_span_io("crossbar/mvm", rows * cols, 4 * (rows * cols + cols), 4 * rows);
    }

    /// [`update`](LinearBackend::update) with an explicit bias-line
    /// drive (see [`forward_biased_into`](AnalogTile::forward_biased_into)).
    /// A 0.0 drive gives the bias column zero pulse probability, so it
    /// fires no pulses and consumes no RNG draws.
    pub fn update_biased(&mut self, delta: &[f32], x: &[f32], bias_drive: f32, lr: f32) {
        assert_eq!(delta.len(), self.array.rows(), "gradient dimension mismatch");
        let xa = self.augmented_scratch(x, bias_drive);
        let pulses_before = self.stats.pulses;
        match self.cfg.update {
            UpdateScheme::StochasticPulse { bl } => self.update_stochastic(delta, &xa, lr, bl),
            UpdateScheme::MeanField => self.update_mean_field(delta, &xa, lr),
        }
        self.stats.update_ops += 1;
        enw_trace::record_span("crossbar/update", self.stats.pulses - pulses_before);
    }
}

impl LinearBackend for AnalogTile {
    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.array.rows()
    }

    // enw:hot
    fn forward_into(&mut self, x: &[f32], out: &mut [f32]) {
        self.forward_biased_into(x, 1.0, out);
    }

    // enw:hot
    fn backward_into(&mut self, delta: &[f32], out: &mut [f32]) {
        assert_eq!(delta.len(), self.array.rows(), "gradient dimension mismatch");
        assert_eq!(out.len(), self.in_dim, "gradient output dimension mismatch");
        // The periphery applies output noise to the full column read —
        // bias column included — before truncation, so the RNG stream
        // (and therefore every later draw) matches the allocating path.
        let mut y = enw_parallel::scratch::take_f32(self.array.cols());
        self.array.par_matvec_t_into(delta, self.cfg.noise.ir_drop, &mut y);
        self.sub_reference_matvec_t(delta, &mut y);
        self.cfg.noise.apply_output(&mut y, &mut self.rng);
        out.copy_from_slice(&y[..self.in_dim]);
        self.stats.backward_ops += 1;
        let (rows, cols) = (self.array.rows() as u64, self.array.cols() as u64);
        enw_trace::record_span_io(
            "crossbar/mvm_t",
            rows * cols,
            4 * (rows * cols + rows),
            4 * cols,
        );
    }

    fn update(&mut self, delta: &[f32], x: &[f32], lr: f32) {
        self.update_biased(delta, x, 1.0, lr);
    }

    fn weights(&self) -> Matrix {
        let physical = self.array.read_matrix();
        match &self.reference {
            None => physical,
            Some(r) => {
                let mut m = physical;
                let cols = m.cols();
                for row in 0..m.rows() {
                    for col in 0..cols {
                        let v = m.at(row, col) - r[row * cols + col];
                        m.set(row, col, v);
                    }
                }
                m
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    fn ideal_tile(out: usize, inp: usize, seed: u64) -> AnalogTile {
        let mut rng = Rng64::new(seed);
        AnalogTile::new(out, inp, &devices::ideal(2000), TileConfig::ideal(), &mut rng)
    }

    #[test]
    fn forward_of_zero_weights_is_zero() {
        let mut t = ideal_tile(3, 2, 1);
        assert_eq!(t.forward(&[0.5, -0.5]), vec![0.0; 3]);
    }

    #[test]
    fn programmed_tile_matches_digital_forward() {
        let mut t = ideal_tile(2, 2, 2);
        let target = Matrix::from_rows(&[&[0.3, -0.2, 0.1], &[0.0, 0.5, -0.4]]);
        t.program_effective(&target);
        let y = t.forward(&[1.0, 1.0]);
        let expect = [0.3 - 0.2 + 0.1, 0.5 - 0.4];
        for (a, e) in y.iter().zip(expect) {
            assert!((a - e).abs() < 0.01, "{a} vs {e}");
        }
    }

    #[test]
    fn backward_is_transpose() {
        let mut t = ideal_tile(2, 3, 3);
        let target = Matrix::from_rows(&[&[0.1, 0.2, 0.3, 0.0], &[-0.1, 0.0, 0.4, 0.0]]);
        t.program_effective(&target);
        let dx = t.backward(&[1.0, 1.0]);
        assert_eq!(dx.len(), 3);
        assert!((dx[0] - 0.0).abs() < 0.02);
        assert!((dx[2] - 0.7).abs() < 0.02);
    }

    #[test]
    fn stochastic_update_moves_weights_in_expectation() {
        let mut t = ideal_tile(1, 1, 4);
        // Repeat the same update many times; mean movement should approach
        // −lr·d·x per update.
        let lr = 0.001;
        let n = 400;
        for _ in 0..n {
            t.update(&[1.0], &[1.0], lr);
        }
        let w = t.weights().at(0, 0);
        let expect = -(lr * n as f32);
        assert!((w - expect).abs() < 0.2 * expect.abs(), "w {w} vs expected {expect}");
    }

    #[test]
    fn update_sign_convention_descends() {
        // Positive delta and positive x must *decrease* the weight
        // (gradient descent), matching DigitalLinear.
        let mut t = ideal_tile(1, 1, 5);
        for _ in 0..50 {
            t.update(&[1.0], &[1.0], 0.05);
        }
        assert!(t.weights().at(0, 0) < -0.01);
    }

    #[test]
    fn mean_field_matches_stochastic_direction() {
        let mut rng = Rng64::new(6);
        let cfg = TileConfig { update: UpdateScheme::MeanField, ..TileConfig::ideal() };
        let mut t = AnalogTile::new(1, 1, &devices::ideal(2000), cfg, &mut rng);
        for _ in 0..50 {
            t.update(&[-1.0], &[1.0], 0.05);
        }
        assert!(t.weights().at(0, 0) > 0.01);
    }

    #[test]
    fn zero_shift_reference_zeroes_effective_weights() {
        let mut rng = Rng64::new(7);
        let mut t = AnalogTile::new(4, 3, &devices::rram(), TileConfig::ideal(), &mut rng);
        t.calibrate_zero_shift(800);
        assert!(t.is_zero_shifted());
        let w = t.weights();
        for r in 0..4 {
            for c in 0..4 {
                assert!(w.at(r, c).abs() < 0.05, "effective weight {} at ({r},{c})", w.at(r, c));
            }
        }
        // Forward of the zero-shifted tile is ~0 for any input.
        let y = t.forward(&[1.0, 1.0, 1.0]);
        assert!(y.iter().all(|v| v.abs() < 0.2), "{y:?}");
    }

    #[test]
    fn stats_count_cycles() {
        let mut t = ideal_tile(2, 2, 8);
        t.forward(&[0.0, 0.0]);
        t.backward(&[0.0, 0.0]);
        t.update(&[1.0, 0.5], &[1.0, 1.0], 0.01);
        let s = t.stats();
        assert_eq!(s.forward_ops, 1);
        assert_eq!(s.backward_ops, 1);
        assert_eq!(s.update_ops, 1);
    }

    #[test]
    fn bias_column_participates_in_forward() {
        let mut t = ideal_tile(1, 1, 9);
        let target = Matrix::from_rows(&[&[0.0, 0.5]]); // zero weight, 0.5 bias
        t.program_effective(&target);
        let y = t.forward(&[0.0]);
        assert!((y[0] - 0.5).abs() < 0.01);
    }

    #[test]
    fn stochastic_update_is_thread_count_invariant() {
        // Noisy devices + drop-connect exercise every RNG consumer in the
        // update; per-row forked streams must make the final weights and
        // pulse counts bitwise independent of the worker count.
        let make = || {
            let mut rng = Rng64::new(21);
            let cfg = TileConfig { drop_connect: 0.3, ..TileConfig::ideal() };
            AnalogTile::new(40, 24, &devices::rram(), cfg, &mut rng)
        };
        let d: Vec<f32> = (0..40).map(|i| ((i % 5) as f32 - 2.0) / 8.0).collect();
        let x: Vec<f32> = (0..24).map(|i| ((i % 7) as f32 - 3.0) / 8.0).collect();
        let run = |threads: usize| {
            enw_parallel::with_threads(threads, || {
                let mut t = make();
                for _ in 0..5 {
                    t.update(&d, &x, 0.02);
                }
                (t.weights(), t.stats().pulses)
            })
        };
        let (w1, p1) = run(1);
        assert!(p1 > 0, "update should fire pulses");
        for threads in [3usize, 8] {
            let (w, p) = run(threads);
            assert_eq!(p, p1, "pulse count changed at {threads} threads");
            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&w), bits(&w1), "weights changed at {threads} threads");
        }
    }

    #[test]
    fn builder_defaults_match_default_config() {
        let built = TileConfig::builder().build().expect("defaults are valid");
        assert_eq!(built, TileConfig::default());
        let ideal = TileConfig::builder().noise(AnalogNoise::ideal()).build().expect("valid");
        assert_eq!(ideal, TileConfig::ideal());
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let err = TileConfig::builder().drop_connect(1.5).build();
        assert!(matches!(err, Err(CrossbarError::InvalidConfig { .. })), "{err:?}");
        let err = TileConfig::builder().update(UpdateScheme::StochasticPulse { bl: 0 }).build();
        assert!(matches!(err, Err(CrossbarError::InvalidConfig { .. })), "{err:?}");
    }

    #[test]
    fn drop_connect_reduces_pulse_count() {
        let mut rng = Rng64::new(10);
        let spec = devices::ideal(2000);
        let mut plain = AnalogTile::new(8, 8, &spec, TileConfig::ideal(), &mut rng);
        let cfg_dc = TileConfig { drop_connect: 0.8, ..TileConfig::ideal() };
        let mut dropped = AnalogTile::new(8, 8, &spec, cfg_dc, &mut rng);
        let d = vec![1.0f32; 8];
        let x = vec![1.0f32; 8];
        for _ in 0..20 {
            plain.update(&d, &x, 0.05);
            dropped.update(&d, &x, 0.05);
        }
        assert!(dropped.stats().pulses < plain.stats().pulses / 2);
    }
}
