//! Analog *inference* deployment: program trained weights once, then
//! watch them age (paper Sec. II: "inference applications only rely on
//! the forward pass and require excellent long-term weight retention").
//!
//! A network trained in software is write-verify programmed onto PCM
//! differential pairs. Conductances then drift as `(t/t₀)^{-ν}`, so the
//! effective weights — and accuracy — decay over deployment time. Two
//! mitigations from the paper are modeled:
//!
//! * the **projection liner** \[26\]\[27\], which suppresses ν by ~10×;
//! * **algorithmic drift compensation** \[28\]: because drift multiplies
//!   every conductance by (approximately) the same factor, a single
//!   scalar correction per layer — calibrated from a known input's output
//!   magnitude — restores the pre-drift scale.

use crate::devices::pcm::{PcmConfig, PcmPair};
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

/// One layer's weights stored on PCM differential pairs.
///
/// # Example
///
/// ```
/// use enw_crossbar::devices::pcm::PcmConfig;
/// use enw_crossbar::inference::PcmLayer;
/// use enw_numerics::matrix::Matrix;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let weights = Matrix::from_rows(&[&[0.5, -0.25], &[0.0, 0.75]]);
/// let layer = PcmLayer::program(&weights, PcmConfig::projected(), &mut rng);
/// let y = layer.matvec(&[1.0, 1.0], 0.0);
/// assert!((y[0] - 0.25).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct PcmLayer {
    rows: usize,
    cols: usize,
    pairs: Vec<PcmPair>,
    /// Per-layer drift-compensation factor (1.0 = uncompensated).
    correction: f32,
}

impl PcmLayer {
    /// Write-verify programs `weights` (values expected in `[-1, 1]`)
    /// onto fresh pairs at `t = 0`.
    pub fn program(weights: &Matrix, cfg: PcmConfig, rng: &mut Rng64) -> Self {
        let mut pairs = Vec::with_capacity(weights.rows() * weights.cols());
        for r in 0..weights.rows() {
            for c in 0..weights.cols() {
                let mut pair = PcmPair::new_with(cfg, rng);
                // Iterative program-and-verify toward the target.
                let target = weights.at(r, c).clamp(-1.0, 1.0);
                for _ in 0..8 {
                    let err = target - pair.weight(0.0);
                    if err.abs() < cfg.dg {
                        break;
                    }
                    pair.update_at(err, 0.0, rng);
                }
                pairs.push(pair);
            }
        }
        PcmLayer { rows: weights.rows(), cols: weights.cols(), pairs, correction: 1.0 }
    }

    /// Rows (outputs).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (inputs).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The effective weight matrix read at time `now` (with the current
    /// correction applied).
    pub fn weights_at(&self, now: f64) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                m.set(r, c, self.pairs[r * self.cols + c].weight(now) * self.correction);
            }
        }
        m
    }

    /// Forward product using the drifted conductances at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32], now: f64) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "input dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (c, xi) in x.iter().enumerate() {
                acc += self.pairs[r * self.cols + c].weight(now) * xi;
            }
            *out = acc * self.correction;
        }
        y
    }

    /// Mean multiplicative weight decay at `now` relative to `t = 0`
    /// (1.0 = no decay), measured over pairs with non-negligible weight.
    pub fn mean_decay(&self, now: f64) -> f64 {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for p in &self.pairs {
            let w0 = p.weight(0.0);
            if w0.abs() > 0.01 {
                sum += (p.weight(now) / w0) as f64;
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }

    /// Drift compensation \[28\]: sets the scalar correction to undo the
    /// mean multiplicative decay observed at `now` (in hardware this is
    /// calibrated by reading a reference column; here we use the exact
    /// mean, which the reference column estimates).
    pub fn compensate_drift(&mut self, now: f64) {
        let decay = self.mean_decay(now);
        self.correction = if decay > 1e-6 { (1.0 / decay) as f32 } else { 1.0 };
    }

    /// Removes any compensation.
    pub fn reset_compensation(&mut self) {
        self.correction = 1.0;
    }

    /// The active correction factor.
    pub fn correction(&self) -> f32 {
        self.correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_weights() -> Matrix {
        Matrix::from_rows(&[&[0.6, -0.4, 0.1], &[-0.8, 0.3, 0.5]])
    }

    fn quiet(cfg: PcmConfig) -> PcmConfig {
        PcmConfig { write_noise: 0.0, ..cfg }
    }

    #[test]
    fn programming_reaches_targets() {
        let mut rng = Rng64::new(1);
        let w = sample_weights();
        let layer = PcmLayer::program(&w, quiet(PcmConfig::bare()), &mut rng);
        let read = layer.weights_at(0.0);
        for r in 0..2 {
            for c in 0..3 {
                assert!(
                    (read.at(r, c) - w.at(r, c)).abs() < 0.03,
                    "({r},{c}): {} vs {}",
                    read.at(r, c),
                    w.at(r, c)
                );
            }
        }
    }

    #[test]
    fn matvec_matches_weight_matrix() {
        let mut rng = Rng64::new(2);
        let w = sample_weights();
        let layer = PcmLayer::program(&w, quiet(PcmConfig::bare()), &mut rng);
        let x = [1.0f32, -0.5, 0.25];
        let y = layer.matvec(&x, 0.0);
        let y_ref = layer.weights_at(0.0).matvec(&x);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn drift_decays_outputs_over_time() {
        let mut rng = Rng64::new(3);
        let layer = PcmLayer::program(&sample_weights(), quiet(PcmConfig::bare()), &mut rng);
        let x = [1.0f32, 1.0, 1.0];
        let y0 = layer.matvec(&x, 0.0);
        let y_late = layer.matvec(&x, 1e8);
        // Magnitudes shrink uniformly.
        let n0: f32 = y0.iter().map(|v| v.abs()).sum();
        let nl: f32 = y_late.iter().map(|v| v.abs()).sum();
        assert!(nl < 0.85 * n0, "no visible drift: {nl} vs {n0}");
    }

    #[test]
    fn compensation_recovers_most_of_the_drift_error() {
        // With per-device ν dispersion the scalar correction cannot be
        // exact, but it must recover the bulk of the mean decay.
        let mut rng = Rng64::new(4);
        let mut layer = PcmLayer::program(&sample_weights(), quiet(PcmConfig::bare()), &mut rng);
        let x = [0.5f32, -1.0, 0.75];
        let y0 = layer.matvec(&x, 0.0);
        let y_drifted = layer.matvec(&x, 1e8);
        layer.compensate_drift(1e8);
        let y_fixed = layer.matvec(&x, 1e8);
        let err = |y: &[f32]| -> f32 { y.iter().zip(&y0).map(|(a, b)| (a - b).abs()).sum() };
        assert!(
            err(&y_fixed) < 0.5 * err(&y_drifted),
            "compensation did not help: {} vs {}",
            err(&y_fixed),
            err(&y_drifted)
        );
        assert!(layer.correction() > 1.0);
    }

    #[test]
    fn compensation_is_exact_without_nu_dispersion() {
        let mut rng = Rng64::new(7);
        let cfg = PcmConfig { drift_nu_sigma: 0.0, ..quiet(PcmConfig::bare()) };
        let mut layer = PcmLayer::program(&sample_weights(), cfg, &mut rng);
        let x = [0.5f32, -1.0, 0.75];
        let y0 = layer.matvec(&x, 0.0);
        layer.compensate_drift(1e8);
        let y_fixed = layer.matvec(&x, 1e8);
        for (a, b) in y0.iter().zip(&y_fixed) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn projected_cells_decay_less() {
        let mut rng = Rng64::new(5);
        let bare = PcmLayer::program(&sample_weights(), quiet(PcmConfig::bare()), &mut rng);
        let lined = PcmLayer::program(&sample_weights(), quiet(PcmConfig::projected()), &mut rng);
        assert!(lined.mean_decay(1e8) > bare.mean_decay(1e8) + 0.05);
    }

    #[test]
    fn reset_compensation_returns_to_raw() {
        let mut rng = Rng64::new(6);
        let mut layer = PcmLayer::program(&sample_weights(), quiet(PcmConfig::bare()), &mut rng);
        layer.compensate_drift(1e6);
        layer.reset_compensation();
        assert_eq!(layer.correction(), 1.0);
    }
}
