//! Typed errors for the crossbar crate (workspace API conventions in
//! DESIGN.md: fallible constructors return `Result<_, CrossbarError>`
//! instead of panicking or collapsing causes into `Option`).

use std::error::Error;
use std::fmt;

/// Everything that can go wrong when configuring simulated analog
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum CrossbarError {
    /// A tile configuration failed validation.
    InvalidConfig {
        /// What constraint was violated.
        reason: &'static str,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::InvalidConfig { reason } => {
                write!(f, "invalid tile configuration: {reason}")
            }
        }
    }
}

impl Error for CrossbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_violated_constraint() {
        let e = CrossbarError::InvalidConfig { reason: "drop_connect must lie in [0, 1)" };
        assert!(e.to_string().contains("drop_connect"));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(CrossbarError::InvalidConfig { reason: "x" });
        assert!(e.source().is_none());
    }
}
