//! Streaming tiled analog-training pipeline — deep conv/MLP stacks on
//! tile grids, resumable and allocation-free in steady state.
//!
//! This module closes the loop the paper's Sec. II opens: training a
//! *deep* network when every weight array is a grid of analog crossbar
//! tiles. It wires three pieces together:
//!
//! * a [`ConvNet`] whose every backend is a [`TiledAnalogLayer`]
//!   (conv layers lower to im2col patches, so conv training becomes a
//!   stream of tiled crossbar cycles);
//! * a **double-buffered input stage**: while step *k*'s stochastic
//!   pulse updates are applied, step *k+1*'s sample is staged into the
//!   inactive buffer — the overlap a real accelerator gets from DMA.
//!   On this simulator the overlap is modeled on a **virtual clock**:
//!   `t_step = t_fwd/bwd + max(t_update, t_prefetch)`, with cycle
//!   counts taken from the tiles' own [`TileStats`] deltas (an analog
//!   read is O(1) in array size, so time counts *cycles*, not MACs);
//! * **bit-reproducible checkpoint/resume** via [`enw_nn::snapshot`]:
//!   the checkpoint carries every piece of mutable state — tile
//!   conductances, per-tile RNG streams, pulse counters, the shuffle
//!   RNG, the epoch order, both staging buffers, and the virtual
//!   clock — so a restored pipeline continues byte-identically to an
//!   uninterrupted run.
//!
//! Steady-state steps are allocation-free: the staging buffers, the
//! epoch order, and every activation/gradient buffer inside the network
//! are sized at construction, and the tile fan-outs use the result-free
//! `enw-parallel` entry points (E21's counting-allocator gate enforces
//! this end to end).

use crate::device::DeviceSpec;
use crate::error::CrossbarError;
use crate::tile::{TileConfig, TileStats};
use crate::tiled::{TiledAnalogLayer, TilingConfig};
use enw_nn::conv::{ConvNet, ConvNetConfig};
use enw_nn::data::Dataset;
use enw_nn::snapshot::{check_dim, SnapshotError, StateReader, StateWriter};
use enw_numerics::rng::{Rng64, RngState};

/// One analog tile read cycle (forward or backward) in virtual
/// nanoseconds. O(1) in array size — the crossbar's defining property.
const T_READ_NS: u64 = 100;
/// One parallel stochastic pulse-update cycle in virtual nanoseconds
/// (BL pulse trains are longer than a read).
const T_UPDATE_NS: u64 = 200;
/// Modeled staging bandwidth: virtual nanoseconds per byte copied into
/// the inactive input buffer.
const PREFETCH_NS_PER_BYTE: u64 = 1;

/// Everything needed to (re)build an [`AnalogPipeline`] deterministically.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Network architecture (conv stages, embedding, head).
    pub net: ConvNetConfig,
    /// Crosspoint device technology for every tile.
    pub spec: DeviceSpec,
    /// Tile periphery/update realization.
    pub tile: TileConfig,
    /// How each layer's weight matrix is sharded into tiles.
    pub tiling: TilingConfig,
    /// SGD learning rate.
    pub lr: f32,
    /// Seed for network construction and the epoch shuffle stream.
    pub seed: u64,
}

/// A resumable streaming trainer for a deep network whose every weight
/// array is a [`TiledAnalogLayer`].
///
/// Construction is a pure function of ([`PipelineConfig`], dataset
/// size), so checkpoints only carry mutable state; restoring into a
/// freshly built pipeline resumes bit-identically.
#[derive(Debug, Clone)]
pub struct AnalogPipeline {
    net: ConvNet<TiledAnalogLayer>,
    lr: f32,
    /// Shuffle stream for the epoch order (serialized in checkpoints).
    rng: Rng64,
    /// Sample visit order for the current epoch, reshuffled in place at
    /// each epoch boundary.
    order: Vec<usize>,
    /// Position within `order` of the *staged* (next) sample.
    cursor: usize,
    /// Double-buffered input stage; `staging[cur]` holds the sample the
    /// next [`step`](AnalogPipeline::step) consumes.
    staging: [Vec<f32>; 2],
    staged_label: [usize; 2],
    cur: usize,
    steps: u64,
    epochs: u64,
    clock_ns: u64,
}

impl AnalogPipeline {
    /// Builds the tiled network and stages the first sample.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if the dataset is empty
    /// or the architecture/tiling is degenerate.
    pub fn new(cfg: &PipelineConfig, data: &Dataset) -> Result<Self, CrossbarError> {
        if data.is_empty() {
            return Err(CrossbarError::InvalidConfig { reason: "pipeline needs a non-empty dataset" });
        }
        if cfg.net.input.len() != data.input(0).len() {
            return Err(CrossbarError::InvalidConfig {
                reason: "dataset sample size does not match the network input shape",
            });
        }
        let mut rng = Rng64::new(cfg.seed);
        let (spec, tile, tiling) = (&cfg.spec, cfg.tile, cfg.tiling);
        let net = ConvNet::try_with_backends(&cfg.net, &mut rng, |in_dim, out_dim, rng| {
            TiledAnalogLayer::new(out_dim, in_dim, spec, tile, tiling, rng)
        })?;
        let mut order: Vec<usize> = (0..data.len()).collect();
        rng.shuffle(&mut order);
        let input_len = cfg.net.input.len();
        let mut pipeline = AnalogPipeline {
            net,
            lr: cfg.lr,
            rng,
            order,
            cursor: 0,
            staging: [vec![0.0; input_len], vec![0.0; input_len]],
            staged_label: [0; 2],
            cur: 0,
            steps: 0,
            epochs: 0,
            clock_ns: 0,
        };
        pipeline.stage(data, 0);
        Ok(pipeline)
    }

    /// Copies sample `order[cursor]` into staging buffer `slot`.
    fn stage(&mut self, data: &Dataset, slot: usize) {
        let idx = self.order[self.cursor];
        self.staging[slot].copy_from_slice(data.input(idx));
        self.staged_label[slot] = data.label(idx);
    }

    /// The trained network (e.g. for evaluation).
    pub fn net_mut(&mut self) -> &mut ConvNet<TiledAnalogLayer> {
        &mut self.net
    }

    /// Training steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Completed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Virtual time elapsed, in modeled nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Steady-state throughput: samples per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.clock_ns == 0 {
            return 0.0;
        }
        self.steps as f64 * 1e9 / self.clock_ns as f64
    }

    /// Pulse/cycle counters summed over every tile of every layer.
    pub fn stats(&self) -> TileStats {
        let mut total = TileStats::default();
        for layer in self.net.backends() {
            let s = layer.stats();
            total.forward_ops += s.forward_ops;
            total.backward_ops += s.backward_ops;
            total.update_ops += s.update_ops;
            total.pulses += s.pulses;
        }
        total
    }

    /// One streaming training step: trains on the staged sample while
    /// (in model time) the next sample is prefetched into the inactive
    /// buffer. Returns the sample loss. Allocation-free in steady state.
    pub fn step(&mut self, data: &Dataset) -> f32 {
        let before = self.stats();
        // Advance the cursor and prefetch the *next* sample into the
        // inactive buffer (overlapped with this step's update phase on
        // the virtual clock).
        self.cursor += 1;
        if self.cursor == self.order.len() {
            self.rng.shuffle(&mut self.order);
            self.cursor = 0;
            self.epochs += 1;
        }
        let next = 1 - self.cur;
        self.stage(data, next);
        let prefetch_bytes = 4 * self.staging[next].len() as u64;
        // Train on the sample staged during the previous step.
        let AnalogPipeline { net, staging, staged_label, cur, lr, .. } = self;
        let loss = net.train_step(&staging[*cur], staged_label[*cur], *lr);
        self.cur = next;
        // Advance the virtual clock from the tiles' own cycle counts:
        // reads serialize with the step, updates overlap the prefetch.
        let after = self.stats();
        let reads =
            (after.forward_ops - before.forward_ops) + (after.backward_ops - before.backward_ops);
        let updates = after.update_ops - before.update_ops;
        let t_fb = reads * T_READ_NS;
        let t_update = updates * T_UPDATE_NS;
        let t_prefetch = prefetch_bytes * PREFETCH_NS_PER_BYTE;
        self.clock_ns += t_fb + t_update.max(t_prefetch);
        enw_trace::record_span_io("crossbar/train/fb", reads, 0, 0);
        enw_trace::record_span_io("crossbar/train/update", updates, 0, 0);
        enw_trace::record_span_io("crossbar/train/prefetch", 1, prefetch_bytes, prefetch_bytes);
        self.steps += 1;
        loss
    }

    /// Runs `n` steps; returns the mean loss.
    pub fn run(&mut self, data: &Dataset, n: usize) -> f64 {
        let mut total = 0.0f64;
        for _ in 0..n {
            total += self.step(data) as f64;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Classification accuracy of the current network over a dataset.
    pub fn evaluate(&mut self, data: &Dataset) -> f64 {
        self.net.evaluate(data)
    }

    /// Serializes every piece of mutable state into a checkpoint.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.tag(b"EPIP");
        w.u64(self.steps);
        w.u64(self.epochs);
        w.u64(self.clock_ns);
        w.u64(self.cursor as u64);
        w.u64(self.cur as u64);
        let rs = self.rng.state();
        for word in rs.words {
            w.u64(word);
        }
        w.flag(rs.gauss_spare_bits.is_some());
        w.u64(rs.gauss_spare_bits.unwrap_or(0));
        w.u64(self.order.len() as u64);
        for &idx in &self.order {
            w.u64(idx as u64);
        }
        for slot in 0..2 {
            w.f32_slice(&self.staging[slot]);
            w.u64(self.staged_label[slot] as u64);
        }
        for layer in self.net.backends() {
            layer.save_state(&mut w);
        }
        w.into_bytes()
    }

    /// Restores a checkpoint taken from a pipeline built with the same
    /// [`PipelineConfig`] and dataset; the restored pipeline then
    /// continues bit-identically to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the stream is truncated,
    /// mistagged, shaped for a different configuration, or has
    /// trailing bytes.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(bytes);
        r.expect_tag(b"EPIP")?;
        self.steps = r.u64()?;
        self.epochs = r.u64()?;
        self.clock_ns = r.u64()?;
        self.cursor = r.u64()? as usize;
        self.cur = r.u64()? as usize;
        let words = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let has_spare = r.flag()?;
        let spare = r.u64()?;
        self.rng = Rng64::restore(RngState { words, gauss_spare_bits: has_spare.then_some(spare) });
        check_dim("pipeline epoch order length", r.u64()?, self.order.len() as u64)?;
        for idx in self.order.iter_mut() {
            *idx = r.u64()? as usize;
        }
        for slot in 0..2 {
            r.f32_slice(&mut self.staging[slot])?;
            self.staged_label[slot] = r.u64()? as usize;
        }
        for layer in self.net.backends_mut() {
            layer.restore_state(&mut r)?;
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use enw_nn::conv::MapShape;
    use enw_nn::data::SyntheticImages;

    fn small_cfg(seed: u64) -> PipelineConfig {
        PipelineConfig {
            net: ConvNetConfig {
                input: MapShape { channels: 1, height: 8, width: 8 },
                conv_channels: vec![3, 4],
                embed_dim: 12,
                classes: 3,
            },
            spec: devices::rram(),
            tile: TileConfig { drop_connect: 0.1, ..TileConfig::ideal() },
            tiling: TilingConfig { tile_rows: 8, tile_cols: 10 },
            lr: 0.02,
            seed,
        }
    }

    fn small_data(seed: u64) -> Dataset {
        let mut rng = Rng64::new(seed);
        SyntheticImages::builder()
            .classes(3)
            .dim(64)
            .train_per_class(6)
            .test_per_class(2)
            .build(&mut rng)
            .train
    }

    #[test]
    fn builds_a_deep_tiled_stack_and_steps() {
        let data = small_data(11);
        let mut p = AnalogPipeline::new(&small_cfg(1), &data).unwrap();
        assert_eq!(p.net_mut().layer_count(), 4);
        let loss = p.step(&data);
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(p.steps(), 1);
        assert!(p.clock_ns() > 0, "virtual clock must advance");
        assert!(p.stats().pulses > 0 || p.stats().update_ops > 0);
        assert!(p.throughput() > 0.0);
    }

    #[test]
    fn rejects_empty_dataset_and_shape_mismatch() {
        let data = small_data(12);
        let mut cfg = small_cfg(1);
        cfg.net.input = MapShape { channels: 1, height: 10, width: 10 };
        assert!(matches!(
            AnalogPipeline::new(&cfg, &data),
            Err(CrossbarError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn reruns_are_deterministic_and_thread_count_invariant() {
        let data = small_data(13);
        let run = |threads: usize| {
            enw_parallel::with_threads(threads, || {
                let mut p = AnalogPipeline::new(&small_cfg(5), &data).unwrap();
                p.run(&data, 12);
                p.checkpoint()
            })
        };
        let base = run(1);
        assert_eq!(base, run(1), "rerun must be byte-identical");
        assert_eq!(base, run(2), "2-thread run must be byte-identical");
        assert_eq!(base, run(8), "8-thread run must be byte-identical");
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_to_uninterrupted_run() {
        let data = small_data(14);
        let mut a = AnalogPipeline::new(&small_cfg(7), &data).unwrap();
        a.run(&data, 9);
        let mid = a.checkpoint();
        a.run(&data, 9);
        let finish = a.checkpoint();

        let mut b = AnalogPipeline::new(&small_cfg(7), &data).unwrap();
        b.restore(&mid).unwrap();
        assert_eq!(b.steps(), 9);
        b.run(&data, 9);
        assert_eq!(b.checkpoint(), finish, "resumed run diverged from the uninterrupted one");
    }

    #[test]
    fn restore_rejects_a_foreign_checkpoint() {
        let data = small_data(15);
        let a = AnalogPipeline::new(&small_cfg(1), &data).unwrap();
        let bytes = a.checkpoint();
        let mut cfg = small_cfg(1);
        cfg.tiling = TilingConfig { tile_rows: 4, tile_cols: 4 };
        let mut b = AnalogPipeline::new(&cfg, &data).unwrap();
        assert!(b.restore(&bytes).is_err());
    }

    #[test]
    fn epoch_boundary_reshuffles_without_repeating_state() {
        let data = small_data(16);
        let mut p = AnalogPipeline::new(&small_cfg(3), &data).unwrap();
        let n = data.len();
        p.run(&data, n + 2);
        assert_eq!(p.epochs(), 1, "one epoch boundary after {} steps", n + 2);
        let mut seen: Vec<usize> = p.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>(), "order must stay a permutation");
    }
}
