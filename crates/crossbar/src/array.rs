//! The analog crossbar array: a grid of pulsed devices holding weights as
//! conductances, with in-place forward/transposed reads and per-device
//! pulse programming.
//!
//! The array is the physical object; circuit-level concerns (converters,
//! noise, update pulse trains) live in [`crate::tile`]. Keeping the split
//! mirrors the hardware: the same array is shared by inference-only and
//! training peripheries.

use crate::device::{DeviceSpec, PulseDir, PulsedDevice};
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

// The parallel read kernels are gated and chunked by
// `enw_parallel::plan_chunks` from the per-line crosspoint count;
// boundaries depend only on the array shape, so results are
// bit-identical at any `ENW_THREADS` (each output line is one
// independent reduction).

/// How a defective device fails (paper Sec. II-B2: imperfect yield).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectMode {
    /// Stuck open: contributes no current (weight 0), ignores pulses.
    StuckAtZero,
    /// Stuck at a uniformly random conductance within its bounds.
    StuckAtRandom,
    /// Stuck at the maximum conductance (shorted filament).
    StuckAtMax,
}

/// A crossbar array of `rows × cols` pulsed devices.
///
/// # Example
///
/// ```
/// use enw_crossbar::array::AnalogArray;
/// use enw_crossbar::devices;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let arr = AnalogArray::new(4, 3, &devices::ideal(1000), &mut rng);
/// let y = arr.matvec(&[1.0, 0.5, -0.5], 0.0);
/// assert_eq!(y.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogArray {
    rows: usize,
    cols: usize,
    weights: Vec<f32>,
    devices: Vec<PulsedDevice>,
    pulse_count: u64,
}

impl AnalogArray {
    /// Builds an array by materializing `spec` at every crosspoint; all
    /// weights start at 0.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, spec: &DeviceSpec, rng: &mut Rng64) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        let devices = (0..rows * cols).map(|_| spec.materialize(rng)).collect();
        AnalogArray { rows, cols, weights: vec![0.0; rows * cols], devices, pulse_count: 0 }
    }

    /// Number of rows (output lines in the forward direction).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input lines in the forward direction).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total programming pulses applied since construction.
    pub fn pulse_count(&self) -> u64 {
        self.pulse_count
    }

    /// The stored weight at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn weight(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.weights[r * self.cols + c]
    }

    /// Device parameters at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn device(&self, r: usize, c: usize) -> &PulsedDevice {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.devices[r * self.cols + c]
    }

    /// Directly sets a weight, clamped to the device's bounds. Models a
    /// slow, exact write-verify programming step — not something training
    /// hardware does per update, but available for initialization studies.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_weight(&mut self, r: usize, c: usize, w: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let i = r * self.cols + c;
        let d = &self.devices[i];
        self.weights[i] = w.clamp(d.w_min, d.w_max);
    }

    /// Forward read `y = W · x` with optional IR drop.
    ///
    /// The IR-drop model attenuates each crosspoint's contribution by
    /// `1 − ir_drop · (r/rows + c/cols)/2`: devices far from both drivers
    /// lose the most signal, a first-order picture of interconnect
    /// resistance on large arrays (why the paper wants 10–100 MΩ devices).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32], ir_drop: f32) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_into(x, ir_drop, &mut y);
        y
    }

    /// [`matvec`](AnalogArray::matvec) into a caller-owned output buffer
    /// (`y` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    // enw:hot
    pub fn matvec_into(&self, x: &[f32], ir_drop: f32, y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.weights[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            if ir_drop == 0.0 {
                for (w, xi) in row.iter().zip(x) {
                    acc += w * xi;
                }
            } else {
                let rfrac = r as f32 / self.rows as f32;
                for (c, (w, xi)) in row.iter().zip(x).enumerate() {
                    let atten = 1.0 - ir_drop * 0.5 * (rfrac + c as f32 / self.cols as f32);
                    acc += w * xi * atten;
                }
            }
            *out = acc;
        }
    }

    /// Transposed read `y = Wᵀ · d` with the same IR-drop model.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows`.
    pub fn matvec_t(&self, d: &[f32], ir_drop: f32) -> Vec<f32> {
        let mut y = vec![0.0f32; self.cols];
        self.matvec_t_into(d, ir_drop, &mut y);
        y
    }

    /// [`matvec_t`](AnalogArray::matvec_t) into a caller-owned output
    /// buffer (`y` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows` or `y.len() != cols`.
    // enw:hot
    pub fn matvec_t_into(&self, d: &[f32], ir_drop: f32, y: &mut [f32]) {
        assert_eq!(d.len(), self.rows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output dimension mismatch");
        y.fill(0.0);
        for (r, di) in d.iter().enumerate() {
            if *di == 0.0 {
                continue;
            }
            let row = &self.weights[r * self.cols..(r + 1) * self.cols];
            if ir_drop == 0.0 {
                for (out, w) in y.iter_mut().zip(row) {
                    *out += w * di;
                }
            } else {
                let rfrac = r as f32 / self.rows as f32;
                for (c, (out, w)) in y.iter_mut().zip(row).enumerate() {
                    let atten = 1.0 - ir_drop * 0.5 * (rfrac + c as f32 / self.cols as f32);
                    *out += w * di * atten;
                }
            }
        }
    }

    /// Parallel [`matvec`](AnalogArray::matvec): rows are split at
    /// work-estimate-sized chunk boundaries across the `enw_parallel`
    /// pool; each output current is the same ascending-column sum (with
    /// the same per-crosspoint IR-drop attenuation) as the serial read,
    /// so results are bit-identical at any thread count. Falls back to
    /// the serial loop for small arrays or a single worker.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn par_matvec(&self, x: &[f32], ir_drop: f32) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.par_matvec_into(x, ir_drop, &mut y);
        y
    }

    /// [`par_matvec`](AnalogArray::par_matvec) into a caller-owned
    /// output buffer (`y` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    // enw:hot
    pub fn par_matvec_into(&self, x: &[f32], ir_drop: f32, y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        let Some(chunk) = enw_parallel::plan_chunks(self.rows, self.cols) else {
            return self.matvec_into(x, ir_drop, y);
        };
        enw_parallel::for_each_chunk_mut(y, chunk, |start, window| {
            for (out, r) in window.iter_mut().zip(start..) {
                let row = &self.weights[r * self.cols..(r + 1) * self.cols];
                let mut acc = 0.0f32;
                if ir_drop == 0.0 {
                    for (w, xi) in row.iter().zip(x) {
                        acc += w * xi;
                    }
                } else {
                    let rfrac = r as f32 / self.rows as f32;
                    for (c, (w, xi)) in row.iter().zip(x).enumerate() {
                        let atten = 1.0 - ir_drop * 0.5 * (rfrac + c as f32 / self.cols as f32);
                        acc += w * xi * atten;
                    }
                }
                *out = acc;
            }
        });
    }

    /// Parallel [`matvec_t`](AnalogArray::matvec_t): output columns are
    /// split at work-estimate-sized chunk boundaries; every worker walks
    /// the rows in ascending order with the same zero-`d` skip and
    /// IR-drop model, so results are bit-identical to the serial read at
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows`.
    pub fn par_matvec_t(&self, d: &[f32], ir_drop: f32) -> Vec<f32> {
        let mut y = vec![0.0f32; self.cols];
        self.par_matvec_t_into(d, ir_drop, &mut y);
        y
    }

    /// [`par_matvec_t`](AnalogArray::par_matvec_t) into a caller-owned
    /// output buffer (`y` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows` or `y.len() != cols`.
    // enw:hot
    pub fn par_matvec_t_into(&self, d: &[f32], ir_drop: f32, y: &mut [f32]) {
        assert_eq!(d.len(), self.rows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output dimension mismatch");
        let Some(chunk) = enw_parallel::plan_chunks(self.cols, self.rows) else {
            return self.matvec_t_into(d, ir_drop, y);
        };
        let cols = self.cols;
        y.fill(0.0);
        enw_parallel::for_each_chunk_mut(y, chunk, |c0, window| {
            for (r, di) in d.iter().enumerate() {
                if *di == 0.0 {
                    continue;
                }
                let row = &self.weights[r * cols + c0..r * cols + c0 + window.len()];
                if ir_drop == 0.0 {
                    for (out, w) in window.iter_mut().zip(row) {
                        *out += w * di;
                    }
                } else {
                    let rfrac = r as f32 / self.rows as f32;
                    for (c, (out, w)) in window.iter_mut().zip(row).enumerate() {
                        let atten = 1.0 - ir_drop * 0.5 * (rfrac + (c0 + c) as f32 / cols as f32);
                        *out += w * di * atten;
                    }
                }
            }
        });
    }

    /// Applies one programming pulse to device `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn pulse(&mut self, r: usize, c: usize, dir: PulseDir, rng: &mut Rng64) {
        debug_assert!(r < self.rows && c < self.cols);
        let i = r * self.cols + c;
        self.weights[i] = self.devices[i].pulse(self.weights[i], dir, rng);
        self.pulse_count += 1;
    }

    /// Runs a caller-supplied pulse routine over every row, in parallel
    /// across fixed `row_chunk`-sized row blocks, and returns the total
    /// number of pulses fired (also added to the array's pulse counter).
    ///
    /// Each invocation of `f` gets a [`RowPulser`] giving exclusive
    /// mutable access to that row's weights — rows are disjoint, so any
    /// schedule of rows across workers produces the same final state as
    /// the serial loop, provided `f` itself is deterministic per row
    /// (e.g. drives its randomness from a per-row forked RNG, as
    /// `AnalogTile::update_stochastic` does).
    pub fn par_pulse_by_row<F>(&mut self, row_chunk: usize, f: F) -> u64
    where
        F: Fn(usize, &mut RowPulser<'_>) -> u64 + Sync,
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cols = self.cols;
        let devices = &self.devices;
        // Pulse totals are summed through an integer atomic rather than a
        // per-chunk result vector: u64 addition is exact and commutative,
        // so the count is schedule-independent, and the section stays
        // allocation-free — which keeps the whole training step zero-alloc
        // in steady state (E21's gate).
        let total = AtomicU64::new(0);
        enw_parallel::run_chunks_mut(&mut self.weights, row_chunk.max(1) * cols, |start, window| {
            let r0 = start / cols;
            let mut chunk_total = 0u64;
            for (k, wrow) in window.chunks_mut(cols).enumerate() {
                let r = r0 + k;
                let mut pulser =
                    RowPulser { weights: wrow, devices: &devices[r * cols..(r + 1) * cols] };
                chunk_total += f(r, &mut pulser);
            }
            total.fetch_add(chunk_total, Ordering::Relaxed);
        });
        let total = total.load(Ordering::Relaxed);
        self.pulse_count += total;
        total
    }

    /// The stored weights, row-major. The raw-state counterpart of
    /// [`read_matrix`](AnalogArray::read_matrix), used by checkpointing
    /// to serialize conductances without an intermediate copy.
    pub fn weights_raw(&self) -> &[f32] {
        &self.weights
    }

    /// Overwrites the stored weights from a row-major slice, bit-exact
    /// (no device-bound clamping — the values are expected to come from
    /// [`weights_raw`](AnalogArray::weights_raw) of an identically
    /// constructed array, as in checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != rows * cols`.
    pub fn restore_weights(&mut self, w: &[f32]) {
        assert_eq!(w.len(), self.weights.len(), "weight snapshot shape mismatch");
        self.weights.copy_from_slice(w);
    }

    /// Overwrites the lifetime pulse counter (checkpoint restore).
    pub fn restore_pulse_count(&mut self, n: u64) {
        self.pulse_count = n;
    }

    /// Exact snapshot of the stored weights.
    pub fn read_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.weights.clone())
    }

    /// Column `c` of the stored weights.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column out of bounds");
        (0..self.rows).map(|r| self.weights[r * self.cols + c]).collect()
    }

    /// Marks a fraction of devices defective; returns how many were hit.
    ///
    /// Defective devices stop responding to pulses and take the weight
    /// dictated by `mode`.
    pub fn inject_defects(&mut self, fraction: f64, mode: DefectMode, rng: &mut Rng64) -> usize {
        let n = ((self.rows * self.cols) as f64 * fraction).round() as usize;
        let hit = rng.sample_indices(self.rows * self.cols, n.min(self.rows * self.cols));
        for &i in &hit {
            self.devices[i].responsive = false;
            self.weights[i] = match mode {
                DefectMode::StuckAtZero => 0.0,
                DefectMode::StuckAtMax => self.devices[i].w_max,
                DefectMode::StuckAtRandom => {
                    rng.range(self.devices[i].w_min as f64, self.devices[i].w_max as f64) as f32
                }
            };
        }
        hit.len()
    }

    /// Per-device symmetry points, row-major (the quantity zero-shifting
    /// measures and stores in a reference array).
    pub fn symmetry_points(&self) -> Vec<f32> {
        self.devices.iter().map(|d| d.symmetry_point()).collect()
    }

    /// Drives every device to its symmetry point by `pairs` alternating
    /// up/down pulse pairs — the measurement phase of zero-shifting \[30\].
    pub fn converge_to_symmetry(&mut self, pairs: u32, rng: &mut Rng64) {
        for i in 0..self.weights.len() {
            let d = self.devices[i];
            let mut w = self.weights[i];
            for _ in 0..pairs {
                w = d.pulse(w, PulseDir::Up, rng);
                w = d.pulse(w, PulseDir::Down, rng);
            }
            self.weights[i] = w;
            self.pulse_count += 2 * pairs as u64;
        }
    }

    /// Closed-loop (write-verify) programming of a target weight pattern:
    /// iteratively pulses each device toward its target until within
    /// `tolerance` or `max_pulses` is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `target` has a different shape.
    pub fn program(&mut self, target: &Matrix, tolerance: f32, max_pulses: u32, rng: &mut Rng64) {
        assert_eq!(
            (target.rows(), target.cols()),
            (self.rows, self.cols),
            "program target shape mismatch"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                let i = r * self.cols + c;
                let d = self.devices[i];
                let t = target.at(r, c).clamp(d.w_min, d.w_max);
                let mut w = self.weights[i];
                for _ in 0..max_pulses {
                    let err = t - w;
                    if err.abs() <= tolerance {
                        break;
                    }
                    let dir = if err > 0.0 { PulseDir::Up } else { PulseDir::Down };
                    w = d.pulse(w, dir, rng);
                    self.pulse_count += 1;
                }
                self.weights[i] = w;
            }
        }
    }
}

/// Exclusive view of one crossbar row handed out by
/// [`AnalogArray::par_pulse_by_row`]: lets update code pulse devices in
/// that row without aliasing any other row.
pub struct RowPulser<'a> {
    weights: &'a mut [f32],
    devices: &'a [PulsedDevice],
}

impl RowPulser<'_> {
    /// The row's current weight at column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn weight(&self, c: usize) -> f32 {
        self.weights[c]
    }

    /// Applies one programming pulse to the device at column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[inline]
    pub fn pulse(&mut self, c: usize, dir: PulseDir, rng: &mut Rng64) {
        self.weights[c] = self.devices[c].pulse(self.weights[c], dir, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    fn small_array(rng: &mut Rng64) -> AnalogArray {
        AnalogArray::new(3, 4, &devices::ideal(1000), rng)
    }

    #[test]
    fn starts_at_zero() {
        let mut rng = Rng64::new(1);
        let a = small_array(&mut rng);
        assert_eq!(a.matvec(&[1.0; 4], 0.0), vec![0.0; 3]);
        assert_eq!(a.pulse_count(), 0);
    }

    #[test]
    fn matvec_matches_reference() {
        let mut rng = Rng64::new(2);
        let mut a = small_array(&mut rng);
        a.set_weight(0, 0, 0.5);
        a.set_weight(1, 2, -0.25);
        let y = a.matvec(&[1.0, 0.0, 2.0, 0.0], 0.0);
        assert_eq!(y, vec![0.5, -0.5, 0.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let mut rng = Rng64::new(3);
        let mut a = small_array(&mut rng);
        a.set_weight(2, 1, 0.7);
        let y = a.matvec_t(&[0.0, 0.0, 1.0], 0.0);
        assert_eq!(y[1], 0.7);
    }

    #[test]
    fn ir_drop_attenuates_far_corner_most() {
        let mut rng = Rng64::new(4);
        let mut a = AnalogArray::new(2, 2, &devices::ideal(1000), &mut rng);
        a.set_weight(0, 0, 1.0);
        a.set_weight(1, 1, 1.0);
        let y = a.matvec(&[1.0, 1.0], 0.2);
        assert!(y[1] < y[0], "far device should see more attenuation: {y:?}");
    }

    #[test]
    fn pulses_move_weight_and_count() {
        let mut rng = Rng64::new(5);
        let mut a = small_array(&mut rng);
        for _ in 0..10 {
            a.pulse(1, 1, PulseDir::Up, &mut rng);
        }
        assert!((a.weight(1, 1) - 0.02).abs() < 1e-5);
        assert_eq!(a.pulse_count(), 10);
    }

    #[test]
    fn set_weight_clamps_to_device_bounds() {
        let mut rng = Rng64::new(6);
        let mut a = small_array(&mut rng);
        a.set_weight(0, 0, 5.0);
        assert_eq!(a.weight(0, 0), 1.0);
    }

    #[test]
    fn defects_freeze_devices() {
        let mut rng = Rng64::new(7);
        let mut a = AnalogArray::new(10, 10, &devices::ideal(1000), &mut rng);
        let hit = a.inject_defects(0.2, DefectMode::StuckAtZero, &mut rng);
        assert_eq!(hit, 20);
        let frozen: Vec<(usize, usize)> = (0..10)
            .flat_map(|r| (0..10).map(move |c| (r, c)))
            .filter(|&(r, c)| !a.device(r, c).responsive)
            .collect();
        assert_eq!(frozen.len(), 20);
        let (r, c) = frozen[0];
        a.pulse(r, c, PulseDir::Up, &mut rng);
        assert_eq!(a.weight(r, c), 0.0);
    }

    #[test]
    fn program_reaches_target_within_tolerance() {
        let mut rng = Rng64::new(8);
        let mut a = small_array(&mut rng);
        let target = Matrix::from_rows(&[
            &[0.3, -0.4, 0.1, 0.0],
            &[-0.8, 0.2, 0.5, -0.1],
            &[0.0, 0.9, -0.9, 0.25],
        ]);
        a.program(&target, 0.005, 2000, &mut rng);
        for r in 0..3 {
            for c in 0..4 {
                assert!(
                    (a.weight(r, c) - target.at(r, c)).abs() <= 0.006,
                    "({r},{c}): {} vs {}",
                    a.weight(r, c),
                    target.at(r, c)
                );
            }
        }
    }

    #[test]
    fn par_reads_bitwise_match_serial_reads() {
        let mut rng = Rng64::new(11);
        let mut a = AnalogArray::new(150, 130, &devices::ideal(1000), &mut rng);
        let target = Matrix::random_uniform(150, 130, -0.9, 0.9, &mut rng);
        for r in 0..150 {
            for c in 0..130 {
                a.set_weight(r, c, target.at(r, c));
            }
        }
        let x: Vec<f32> = (0..130).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let mut d: Vec<f32> = (0..150).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        d[3] = 0.0; // exercise the zero-skip path
        for ir in [0.0f32, 0.15] {
            let y = a.matvec(&x, ir);
            let yt = a.matvec_t(&d, ir);
            for threads in [1usize, 3, 8] {
                let (py, pyt) = enw_parallel::with_threads(threads, || {
                    (a.par_matvec(&x, ir), a.par_matvec_t(&d, ir))
                });
                assert!(y.iter().zip(&py).all(|(s, p)| s.to_bits() == p.to_bits()));
                assert!(yt.iter().zip(&pyt).all(|(s, p)| s.to_bits() == p.to_bits()));
            }
        }
    }

    #[test]
    fn converge_to_symmetry_drives_asymmetric_devices() {
        let mut rng = Rng64::new(9);
        let mut a = AnalogArray::new(4, 4, &devices::rram(), &mut rng);
        a.converge_to_symmetry(600, &mut rng);
        let sp = a.symmetry_points();
        for r in 0..4 {
            for c in 0..4 {
                let w = a.weight(r, c);
                let s = sp[r * 4 + c];
                assert!((w - s).abs() < 0.25, "({r},{c}): {w} vs symmetry {s}");
            }
        }
    }
}
