//! Convenience constructors for training whole networks on simulated
//! analog hardware, and the comparison harness the device-requirement
//! experiments (E2/E4) are built on.

use crate::device::DeviceSpec;
use crate::tiki_taka::{TikiTakaConfig, TikiTakaTile};
use crate::tile::{AnalogTile, TileConfig};
use enw_nn::activation::Activation;
use enw_nn::backend::LinearBackend;
use enw_nn::data::Split;
use enw_nn::layer::DenseLayer;
use enw_nn::mlp::{Mlp, SgdConfig};
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

fn xavier(out_dim: usize, in_dim: usize, rng: &mut Rng64) -> Matrix {
    let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
    let mut w = Matrix::random_uniform(out_dim, in_dim + 1, -limit, limit, rng);
    for r in 0..out_dim {
        w.set(r, in_dim, 0.0);
    }
    w
}

/// Builds an MLP whose every layer is an [`AnalogTile`] over `spec`
/// devices, write-verify programmed to a Xavier initialization.
///
/// `dims = [in, h1, …, out]`; hidden layers use `activation`, the output
/// layer is identity.
///
/// # Panics
///
/// Panics if fewer than two dimensions are given.
pub fn analog_mlp(
    dims: &[usize],
    spec: &DeviceSpec,
    tile_cfg: TileConfig,
    activation: Activation,
    rng: &mut Rng64,
) -> Mlp<AnalogTile> {
    assert!(dims.len() >= 2, "need at least input and output dims");
    let layers = dims
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let mut tile = AnalogTile::new(w[1], w[0], spec, tile_cfg, rng);
            tile.program_effective(&xavier(w[1], w[0], rng));
            let act = if i + 2 == dims.len() { Activation::Identity } else { activation };
            DenseLayer::new(tile, act)
        })
        .collect();
    Mlp::from_layers(layers)
}

/// Builds an MLP whose layers are coupled Tiki-Taka tile pairs — the
/// asymmetric-device training configuration of \[35\].
///
/// # Panics
///
/// Panics if fewer than two dimensions are given.
pub fn tiki_taka_mlp(
    dims: &[usize],
    spec: &DeviceSpec,
    tile_cfg: TileConfig,
    tt_cfg: TikiTakaConfig,
    activation: Activation,
    rng: &mut Rng64,
) -> Mlp<TikiTakaTile> {
    assert!(dims.len() >= 2, "need at least input and output dims");
    let layers = dims
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let mut tile = TikiTakaTile::new(w[1], w[0], spec, tile_cfg, tt_cfg, rng);
            tile.program_effective(&xavier(w[1], w[0], rng));
            let act = if i + 2 == dims.len() { Activation::Identity } else { activation };
            DenseLayer::new(tile, act)
        })
        .collect();
    Mlp::from_layers(layers)
}

/// Result of one training run in the comparison harness.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// Test accuracy after training.
    pub test_accuracy: f64,
    /// Mean training loss per epoch.
    pub loss_history: Vec<f64>,
}

/// Trains any backend MLP on a split and evaluates it.
pub fn train_and_evaluate<B: LinearBackend>(
    mlp: &mut Mlp<B>,
    split: &Split,
    cfg: &SgdConfig,
    rng: &mut Rng64,
) -> TrainOutcome {
    let loss_history = mlp.train_sgd(&split.train, cfg, rng);
    TrainOutcome { test_accuracy: mlp.evaluate(&split.test), loss_history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use enw_nn::data::SyntheticImages;

    fn small_split(seed: u64) -> Split {
        SyntheticImages::builder()
            .classes(3)
            .dim(16)
            .train_per_class(30)
            .test_per_class(10)
            .noise(0.4)
            .build(&mut Rng64::new(seed))
    }

    #[test]
    fn analog_mlp_shapes() {
        let mut rng = Rng64::new(1);
        let mlp = analog_mlp(
            &[16, 12, 3],
            &devices::ideal(2000),
            TileConfig::ideal(),
            Activation::Tanh,
            &mut rng,
        );
        assert_eq!(mlp.in_dim(), 16);
        assert_eq!(mlp.out_dim(), 3);
    }

    #[test]
    fn ideal_analog_training_beats_chance() {
        let mut rng = Rng64::new(2);
        let split = small_split(2);
        let mut mlp = analog_mlp(
            &[16, 12, 3],
            &devices::ideal(2000),
            TileConfig::ideal(),
            Activation::Tanh,
            &mut rng,
        );
        let out = train_and_evaluate(
            &mut mlp,
            &split,
            &SgdConfig { epochs: 5, learning_rate: 0.05 },
            &mut rng,
        );
        assert!(out.test_accuracy > 0.6, "accuracy {}", out.test_accuracy);
    }

    #[test]
    fn tiki_taka_mlp_constructs_and_trains_a_little() {
        let mut rng = Rng64::new(3);
        let split = small_split(3);
        let mut mlp = tiki_taka_mlp(
            &[16, 8, 3],
            &devices::rram(),
            TileConfig::ideal(),
            TikiTakaConfig { calibration_pairs: 300, ..TikiTakaConfig::default() },
            Activation::Tanh,
            &mut rng,
        );
        let out = train_and_evaluate(
            &mut mlp,
            &split,
            &SgdConfig { epochs: 2, learning_rate: 0.05 },
            &mut rng,
        );
        assert!(out.test_accuracy > 0.34, "accuracy {}", out.test_accuracy);
    }
}
