//! Multi-objective candidate bookkeeping: objectives, dominance, and the
//! deterministic Pareto filter.

use enw_core::tunable::Point;

/// The three objectives every lane evaluator reports.
///
/// Latency and energy are minimized; quality-per-area is maximized.
/// All three are *model proxies* — consistent within a lane, not
/// calibrated across lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Modeled latency of the lane's probe operation, ns.
    pub latency_ns: f64,
    /// Modeled energy of the probe, pJ.
    pub energy_pj: f64,
    /// Lane quality (accuracy, goodput, capacity — lane-defined) per
    /// unit of lane area proxy.
    pub quality_per_area: f64,
}

impl Objectives {
    /// Strict Pareto dominance: no worse on every axis, strictly better
    /// on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.latency_ns <= other.latency_ns
            && self.energy_pj <= other.energy_pj
            && self.quality_per_area >= other.quality_per_area;
        let better = self.latency_ns < other.latency_ns
            || self.energy_pj < other.energy_pj
            || self.quality_per_area > other.quality_per_area;
        no_worse && better
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The configuration, encoded.
    pub point: Point,
    /// Its evaluated objectives.
    pub objectives: Objectives,
    /// Virtual-clock instant (ns) at which the evaluation completed —
    /// a deterministic trace stamp, not wall time.
    pub stamp_ns: u64,
}

/// The mutually non-dominated subset of `candidates`, deduplicated by
/// point key and sorted by key — byte-stable output for any input
/// order.
pub fn pareto_front(candidates: &[Candidate]) -> Vec<Candidate> {
    let mut sorted: Vec<&Candidate> = candidates.iter().collect();
    sorted.sort_by_key(|a| a.point.key());
    sorted.dedup_by(|a, b| a.point == b.point);
    let mut front = Vec::new();
    for (i, c) in sorted.iter().enumerate() {
        let dominated =
            sorted.iter().enumerate().any(|(j, d)| j != i && d.objectives.dominates(&c.objectives));
        if !dominated {
            front.push((*c).clone());
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use enw_core::tunable::AxisValue;

    fn cand(k: i64, lat: f64, en: f64, qpa: f64) -> Candidate {
        Candidate {
            point: Point::new(vec![("k", AxisValue::Int(k))]),
            objectives: Objectives { latency_ns: lat, energy_pj: en, quality_per_area: qpa },
            stamp_ns: 0,
        }
    }

    #[test]
    fn dominance_needs_strictness() {
        let a = Objectives { latency_ns: 1.0, energy_pj: 1.0, quality_per_area: 1.0 };
        assert!(!a.dominates(&a));
        let worse = Objectives { latency_ns: 2.0, energy_pj: 1.0, quality_per_area: 1.0 };
        assert!(a.dominates(&worse));
        assert!(!worse.dominates(&a));
        let tradeoff = Objectives { latency_ns: 0.5, energy_pj: 2.0, quality_per_area: 1.0 };
        assert!(!a.dominates(&tradeoff));
        assert!(!tradeoff.dominates(&a));
    }

    #[test]
    fn front_keeps_tradeoffs_drops_dominated() {
        let cs = vec![cand(1, 1.0, 3.0, 1.0), cand(2, 3.0, 1.0, 1.0), cand(3, 3.0, 3.0, 1.0)];
        let front = pareto_front(&cs);
        let keys: Vec<String> = front.iter().map(|c| c.point.key()).collect();
        assert_eq!(keys, vec!["k=1", "k=2"]);
    }

    #[test]
    fn front_is_order_independent_and_deduped() {
        let mut cs = vec![cand(2, 3.0, 1.0, 1.0), cand(1, 1.0, 3.0, 1.0), cand(2, 3.0, 1.0, 1.0)];
        let f1 = pareto_front(&cs);
        cs.reverse();
        let f2 = pareto_front(&cs);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 2);
    }
}
