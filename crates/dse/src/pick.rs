//! Deployment selection: choose one front member per lane under a
//! fleet-wide energy budget.
//!
//! This is the fleet-facing consumer of the Pareto fronts: a fleet
//! operator hands the per-lane fronts and a probe-energy budget, and
//! gets back one configuration per lane. The policy is deterministic
//! greedy ascent: start every lane at its cheapest member, then spend
//! the remaining budget on whichever single-lane upgrade buys the most
//! quality-per-area per picojoule, until nothing affordable improves.

use crate::lanes::Lane;
use crate::objective::Candidate;
use std::error::Error;
use std::fmt;

/// Why a selection failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DseError {
    /// Even the cheapest member of every front exceeds the budget.
    BudgetInfeasible {
        /// Sum of each lane's minimum energy, pJ.
        required_pj: f64,
        /// The offered budget, pJ.
        budget_pj: f64,
    },
    /// A lane's front was empty.
    EmptyFront {
        /// The lane without candidates.
        lane: &'static str,
    },
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::BudgetInfeasible { required_pj, budget_pj } => write!(
                f,
                "energy budget infeasible: cheapest selection needs {required_pj:.1} pJ, \
                 budget is {budget_pj:.1} pJ"
            ),
            DseError::EmptyFront { lane } => write!(f, "lane {lane} has an empty Pareto front"),
        }
    }
}

impl Error for DseError {}

/// One lane's chosen configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Pick {
    /// The lane.
    pub lane: Lane,
    /// The chosen front member.
    pub candidate: Candidate,
}

/// Chooses one candidate per lane from `fronts` with total energy within
/// `budget_pj`. Deterministic: ties in the upgrade ratio break by lane
/// order, then candidate key order (fronts are key-sorted).
pub fn pick_configs(
    fronts: &[(Lane, Vec<Candidate>)],
    budget_pj: f64,
) -> Result<Vec<Pick>, DseError> {
    let mut picks: Vec<(Lane, usize, &Vec<Candidate>)> = Vec::new();
    let mut spent = 0.0f64;
    for (lane, front) in fronts {
        let cheapest = front
            .iter()
            .enumerate()
            .fold(None, |acc: Option<(usize, f64)>, (i, c)| match acc {
                Some((_, e)) if e <= c.objectives.energy_pj => acc,
                _ => Some((i, c.objectives.energy_pj)),
            })
            .ok_or(DseError::EmptyFront { lane: lane.name() })?;
        spent += cheapest.1;
        picks.push((*lane, cheapest.0, front));
    }
    if spent > budget_pj {
        return Err(DseError::BudgetInfeasible { required_pj: spent, budget_pj });
    }

    // Greedy upgrades: best Δ(quality-per-area)/Δenergy first.
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for (li, (_, current, front)) in picks.iter().enumerate() {
            let now = &front[*current].objectives;
            for (ci, cand) in front.iter().enumerate() {
                let o = &cand.objectives;
                let de = o.energy_pj - now.energy_pj;
                let dq = o.quality_per_area - now.quality_per_area;
                if dq <= 0.0 || spent + de.max(0.0) > budget_pj {
                    continue;
                }
                // Free quality (de <= 0) is infinitely good; otherwise
                // rate the upgrade per picojoule.
                let ratio = if de <= 0.0 { f64::INFINITY } else { dq / de };
                let better = match best {
                    None => true,
                    Some((_, _, r)) => ratio > r,
                };
                if better {
                    best = Some((li, ci, ratio));
                }
            }
        }
        let Some((li, ci, _)) = best else { break };
        let (_, current, front) = &mut picks[li];
        spent += front[ci].objectives.energy_pj - front[*current].objectives.energy_pj;
        *current = ci;
    }

    Ok(picks
        .into_iter()
        .map(|(lane, i, front)| Pick { lane, candidate: front[i].clone() })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objectives;
    use enw_core::tunable::{AxisValue, Point};

    fn cand(k: i64, energy: f64, qpa: f64) -> Candidate {
        Candidate {
            point: Point::new(vec![("k", AxisValue::Int(k))]),
            objectives: Objectives { latency_ns: 1.0, energy_pj: energy, quality_per_area: qpa },
            stamp_ns: 0,
        }
    }

    fn fronts() -> Vec<(Lane, Vec<Candidate>)> {
        vec![
            (Lane::Crossbar, vec![cand(1, 10.0, 1.0), cand(2, 20.0, 3.0), cand(3, 40.0, 4.0)]),
            (Lane::Cam, vec![cand(1, 5.0, 1.0), cand(2, 25.0, 2.0)]),
        ]
    }

    #[test]
    fn tight_budget_keeps_the_cheapest() {
        let picks = pick_configs(&fronts(), 16.0).unwrap();
        assert_eq!(picks[0].candidate.point.key(), "k=1");
        assert_eq!(picks[1].candidate.point.key(), "k=1");
    }

    #[test]
    fn slack_buys_the_best_ratio_first() {
        // Budget 35: crossbar upgrade to k=2 costs 10 for +2 qpa (0.2/pJ),
        // cam upgrade costs 20 for +1 (0.05/pJ). Only the first fits.
        let picks = pick_configs(&fronts(), 35.0).unwrap();
        assert_eq!(picks[0].candidate.point.key(), "k=2");
        assert_eq!(picks[1].candidate.point.key(), "k=1");
    }

    #[test]
    fn infeasible_budget_is_a_typed_error() {
        let e = pick_configs(&fronts(), 10.0).unwrap_err();
        assert!(matches!(e, DseError::BudgetInfeasible { .. }), "{e}");
    }

    #[test]
    fn empty_front_is_a_typed_error() {
        let e = pick_configs(&[(Lane::Serve, Vec::new())], 10.0).unwrap_err();
        assert_eq!(e, DseError::EmptyFront { lane: "serve" });
    }

    #[test]
    fn selection_is_deterministic() {
        assert_eq!(pick_configs(&fronts(), 70.0).unwrap(), pick_configs(&fronts(), 70.0).unwrap());
    }
}
