//! The five search lanes: one per tunable subsystem, each mapping a
//! [`Point`] to [`Objectives`] through the crate's own simulator.
//!
//! Every evaluator is a *probe*: a small, fixed, deterministic workload
//! driven through the real simulator (or its analytic cost model) so
//! that relative comparisons between candidates are faithful even where
//! absolute numbers are proxies. Infeasible points — decode failures,
//! cross-field violations, configurations the lane cannot build — return
//! `None` and cost the virtual clock one tick.

use crate::objective::Objectives;
use enw_core::cam::array::{TcamArray, TcamConfig};
use enw_core::cam::cells;
use enw_core::crossbar::tile::{TileConfig, UpdateScheme};
use enw_core::fleet::autoscale::AutoscalePolicy;
use enw_core::fleet::shape::{ShapeKind, UserMix, UserSampler};
use enw_core::fleet::sim::{try_run, FleetSpec, LaneSpec};
use enw_core::fleet::traffic::{generate_fleet_trace, FleetClass, FleetLoadSpec};
use enw_core::nn::mlp::SgdConfig;
use enw_core::numerics::bits::BitVec;
use enw_core::numerics::rng::Rng64;
use enw_core::recsys::characterize::{profile_batched, RooflineMachine};
use enw_core::recsys::model::RecModelConfig;
use enw_core::recsys::serving::batch_latency;
use enw_core::serve::{BatchPolicy, ServiceModel};
use enw_core::tunable::{ParamSpace, Point, Tunable};
use enw_core::xmann::arch::{Xmann, XmannConfig};
use enw_core::xmann::cost::XmannCostParams;

/// One searchable subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Analog crossbar tile periphery ([`TileConfig`]).
    Crossbar,
    /// X-MANN bank geometry ([`XmannConfig`]).
    Xmann,
    /// TCAM match-line segmentation ([`TcamConfig`]).
    Cam,
    /// Recommendation-model shape ([`RecModelConfig`]).
    Recsys,
    /// Serving-lane batching ([`BatchPolicy`]).
    Serve,
}

impl Lane {
    /// Every lane, in report order.
    pub fn all() -> [Lane; 5] {
        [Lane::Crossbar, Lane::Xmann, Lane::Cam, Lane::Recsys, Lane::Serve]
    }

    /// Stable name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Crossbar => "crossbar",
            Lane::Xmann => "xmann",
            Lane::Cam => "cam",
            Lane::Recsys => "recsys",
            Lane::Serve => "serve",
        }
    }

    /// The lane's parameter space (its config type's [`Tunable::space`]).
    pub fn space(self) -> ParamSpace {
        match self {
            Lane::Crossbar => TileConfig::space(),
            Lane::Xmann => XmannConfig::space(),
            Lane::Cam => TcamConfig::space(),
            Lane::Recsys => RecModelConfig::space(),
            Lane::Serve => BatchPolicy::space(),
        }
    }

    /// The hand-picked configuration the workspace ships today, encoded
    /// — the baseline every front is compared against.
    pub fn default_point(self) -> Point {
        match self {
            Lane::Crossbar => TileConfig::default().encode(),
            Lane::Xmann => XmannConfig::default().encode(),
            Lane::Cam => TcamConfig::default().encode(),
            Lane::Recsys => RecModelConfig::memory_bound().encode(),
            // The E19 fleet's mlp-lane policy (see enw-fleet presets).
            Lane::Serve => BatchPolicy::new(8, 200_000, 32).encode(),
        }
    }

    /// Evaluates one point; `None` if the point is infeasible.
    pub fn evaluate(self, point: &Point) -> Option<Objectives> {
        match self {
            Lane::Crossbar => eval_crossbar(point),
            Lane::Xmann => eval_xmann(point),
            Lane::Cam => eval_cam(point),
            Lane::Recsys => eval_recsys(point),
            Lane::Serve => eval_serve(point),
        }
    }
}

/// The SGD schedule the crossbar probe assumes when charging update
/// energy (one epoch of rank-1 updates per probe); also keeps the
/// training-side tunable in the lane's vocabulary.
fn probe_sgd() -> SgdConfig {
    SgdConfig::default()
}

// --- crossbar ------------------------------------------------------------

/// Probe array shape: outputs × inputs.
const XB_OUT: usize = 16;
const XB_IN: usize = 8;
/// Probe forward passes.
const XB_PROBES: usize = 8;

/// Analog-periphery lane: functional forward error against the digital
/// reference under the candidate converter/noise stack, analytic
/// energy/latency/area for the periphery.
///
/// A tile with no converter on either side (`dac_bits == 0` or
/// `adc_bits == 0`) is not buildable hardware — the "ideal" setting
/// exists for simulation baselines only — so those points are
/// infeasible here.
fn eval_crossbar(point: &Point) -> Option<Objectives> {
    let cfg = TileConfig::decode(point).ok()?;
    let (dac_bits, adc_bits) = match (cfg.noise.dac_bits, cfg.noise.adc_bits) {
        (Some(d), Some(a)) => (d, a),
        _ => return None,
    };

    // Functional probe: fixed weights, fixed inputs, the candidate's
    // quantization/noise stack between them.
    let mut wrng = Rng64::new(42);
    let w: Vec<f32> = (0..XB_OUT * XB_IN).map(|_| wrng.uniform_f32() * 2.0 - 1.0).collect();
    let mut nrng = Rng64::new(7);
    let mut err_sq = 0.0f64;
    let mut ref_sq = 0.0f64;
    for p in 0..XB_PROBES {
        let mut x: Vec<f32> =
            (0..XB_IN).map(|i| (((p * XB_IN + i) % 7) as f32 - 3.0) / 3.0).collect();
        let clean = matvec(&w, &x);
        cfg.noise.apply_input(&mut x);
        let mut noisy = matvec(&w, &x);
        cfg.noise.apply_output(&mut noisy, &mut nrng);
        for (c, n) in clean.iter().zip(&noisy) {
            err_sq += f64::from((c - n) * (c - n));
            ref_sq += f64::from(c * c);
        }
    }
    let nrmse = (err_sq / ref_sq.max(f64::EPSILON)).sqrt();
    // Stochastic-pulse updates add O(1/√BL) gradient noise on top of the
    // read path; drop-connect suppresses that fraction of coincidences.
    let update_fidelity = match cfg.update {
        UpdateScheme::StochasticPulse { bl } => {
            (1.0 - 0.25 / f64::from(bl).sqrt()) * (1.0 - 0.3 * f64::from(cfg.drop_connect))
        }
        UpdateScheme::MeanField => 1.0 - 0.3 * f64::from(cfg.drop_connect),
    };
    let accuracy = update_fidelity / (1.0 + 4.0 * nrmse);

    // Analytic periphery: converter energy doubles per bit, the array
    // itself is fixed. Update energy scales with the pulse-train length,
    // discounted by suppressed coincidences.
    let cells = (XB_OUT * XB_IN) as f64;
    let e_forward = cells * 0.01
        + XB_IN as f64 * 0.02 * f64::from(1u32 << dac_bits)
        + XB_OUT as f64 * 0.05 * f64::from(1u32 << adc_bits);
    let epochs = probe_sgd().epochs as f64;
    let e_update = match cfg.update {
        UpdateScheme::StochasticPulse { bl } => {
            cells * 0.001 * f64::from(bl) * (1.0 - f64::from(cfg.drop_connect)) * epochs
        }
        UpdateScheme::MeanField => cells * 0.01 * epochs,
    };
    let adc_lanes = 16.0;
    let latency = 100.0 + (XB_OUT as f64 / adc_lanes).ceil() * (1.0 + 0.5 * f64::from(adc_bits));
    let area = 1.0 + 0.003 * f64::from(1u32 << adc_bits) + 0.001 * f64::from(1u32 << dac_bits);
    Some(Objectives {
        latency_ns: latency,
        energy_pj: e_forward + e_update,
        quality_per_area: accuracy / area,
    })
}

/// Row-major `XB_OUT × XB_IN` mat-vec.
fn matvec(w: &[f32], x: &[f32]) -> Vec<f32> {
    (0..XB_OUT).map(|o| (0..XB_IN).map(|i| w[o * XB_IN + i] * x[i]).sum()).collect()
}

// --- xmann ---------------------------------------------------------------

/// Probe memory: slots × feature dim.
const XM_SLOTS: usize = 4096;
const XM_DIM: usize = 64;

/// X-MANN lane: one similarity pass over a 4096×64 memory on the
/// candidate tile hierarchy. The operation is exact (quality 1), so the
/// quality-per-area axis is purely inverse device count — over-provisioned
/// geometries lose there and nowhere else.
fn eval_xmann(point: &Point) -> Option<Objectives> {
    let cfg = XmannConfig::decode(point).ok()?;
    let mut x = Xmann::new(XM_SLOTS, XM_DIM, cfg, XmannCostParams::default());
    let q: Vec<f32> = (0..XM_DIM).map(|i| ((i % 13) as f32 - 6.0) / 6.0).collect();
    let sim = x.similarity(&q);
    let area = (cfg.total_tiles * cfg.tile_rows * cfg.tile_cols) as f64;
    Some(Objectives {
        latency_ns: sim.cost.latency_ns,
        energy_pj: sim.cost.energy_pj,
        quality_per_area: 1.0e6 / area,
    })
}

// --- cam -----------------------------------------------------------------

/// Probe array: word width × stored words.
const CAM_WIDTH: usize = 128;
const CAM_WORDS: usize = 1024;

/// TCAM lane: one nearest-Hamming search over a full array in the
/// candidate segmentation. Selective precharge trades energy (fewer
/// precharged segments) against latency (sequential segment
/// evaluation); the search itself stays exact.
fn eval_cam(point: &Point) -> Option<Objectives> {
    let cfg = TcamConfig::decode(point).ok()?;
    let mut cam = TcamArray::new(CAM_WIDTH, cells::cmos_16t(), cfg);
    for wi in 0..CAM_WORDS {
        let bools: Vec<bool> = (0..CAM_WIDTH).map(|b| (wi * 31 + b * 7) % 3 == 0).collect();
        cam.write(BitVec::from_bools(&bools));
    }
    let query: Vec<bool> = (0..CAM_WIDTH).map(|b| b % 2 == 0).collect();
    let (_, cost) = cam.search_nearest(&BitVec::from_bools(&query));
    let tech = cells::cmos_16t();
    let area_um2 = tech.cell_area_um2 * (CAM_WIDTH * CAM_WORDS) as f64;
    Some(Objectives {
        latency_ns: cost.latency_ns,
        energy_pj: cost.energy_pj,
        quality_per_area: 1.0e6 / area_um2,
    })
}

// --- recsys --------------------------------------------------------------

/// Queries per probe batch.
const REC_BATCH: u64 = 32;
/// Energy per FLOP, pJ (server-class core).
const REC_PJ_PER_FLOP: f64 = 0.5;
/// Energy per DRAM byte, pJ.
const REC_PJ_PER_BYTE: f64 = 10.0;

/// Recommendation lane: roofline latency and flop/byte energy of one
/// batch, against a log-capacity proxy for model expressiveness per
/// parameter byte.
fn eval_recsys(point: &Point) -> Option<Objectives> {
    let cfg = RecModelConfig::decode(point).ok()?;
    let machine = RooflineMachine::server_cpu();
    let latency_ns = batch_latency(&cfg, REC_BATCH, &machine) * 1e9;
    let profile = profile_batched(&cfg, REC_BATCH);
    let total = profile.total();
    let energy_pj = total.flops as f64 * REC_PJ_PER_FLOP + total.bytes as f64 * REC_PJ_PER_BYTE;
    // Capacity proxy: each table contributes lookups·ln(1+rows)·√dim —
    // diminishing returns in catalogue size, linear in pooling degree.
    let dim = cfg.embedding_dim as f64;
    let quality: f64 = cfg
        .tables
        .iter()
        .map(|&(rows, lookups)| lookups as f64 * (1.0 + rows as f64).ln() * dim.sqrt())
        .sum();
    let table_bytes: f64 =
        cfg.tables.iter().map(|&(rows, _)| (rows * cfg.embedding_dim * 4) as f64).sum();
    let mlp_bytes = (mlp_params(cfg.dense_features, &cfg.bottom_mlp)
        + mlp_params(cfg.embedding_dim, &cfg.top_mlp)) as f64
        * 4.0;
    let area_mb = (table_bytes + mlp_bytes) / 1.0e6;
    Some(Objectives { latency_ns, energy_pj, quality_per_area: quality / area_mb })
}

/// Dense parameter count of an MLP stack starting at `input` wide.
fn mlp_params(input: usize, widths: &[usize]) -> usize {
    let mut prev = input;
    let mut n = 0;
    for &w in widths {
        n += prev * w + w;
        prev = w;
    }
    n
}

// --- serve ---------------------------------------------------------------

/// Probe horizon, virtual ns.
const SRV_HORIZON_NS: u64 = 5_000_000;
/// Offered load, requests per second.
const SRV_QPS: f64 = 60_000.0;
/// Per-request deadline, ns.
const SRV_DEADLINE_NS: u64 = 4_000_000;

/// Serving lane: the candidate batch policy on a fixed two-replica lane
/// under the E19 mlp-lane service model and a Poisson probe trace, run
/// through the real fleet simulator. Latency is the lane p99; energy is
/// the replicas' busy time (batch setup amortization is what the policy
/// controls); quality is goodput over the queue-buffer area.
fn eval_serve(point: &Point) -> Option<Objectives> {
    let policy = BatchPolicy::decode(point).ok()?;
    let queue_cap = policy.queue_cap;
    let service = ServiceModel { setup_ns: 40_000, per_item_ns: 15_000 };
    let spec = FleetSpec {
        lanes: vec![LaneSpec {
            name: "probe".to_string(),
            service,
            policy,
            autoscale: AutoscalePolicy {
                min_replicas: 2,
                max_replicas: 2,
                epoch_ns: 2_000_000,
                p99_slo_ns: 2_000_000,
                up_queue_frac: 0.5,
                down_queue_frac: 0.1,
                calm_epochs_to_downscale: 3,
                cooldown_epochs: 1,
            },
            initial_replicas: 2,
            vnodes: 64,
            fanout_ns: 0,
            miss_ns: 0,
            sharded: false,
        }],
        store: None,
        seed: 19,
    };
    let trace = generate_fleet_trace(
        &FleetLoadSpec { duration_ns: SRV_HORIZON_NS, seed: 7 },
        &[FleetClass { lane: 0, weight: 1.0, deadline_ns: SRV_DEADLINE_NS }],
        &mut ShapeKind::Poisson { qps: SRV_QPS },
        &UserSampler::new(UserMix::Uniform { users: 4096 }),
    );
    let report = try_run(spec, &trace).ok()?;
    let lane = report.lanes.first()?;
    let m = &lane.metrics;
    if m.arrived == 0 {
        return None;
    }
    let served = m.completed + m.deadline_misses;
    if served == 0 {
        return None;
    }
    let busy_ns = m.batches * service.setup_ns + served * service.per_item_ns;
    let goodput = m.completed as f64 / m.arrived as f64;
    Some(Objectives {
        latency_ns: m.summary().p99_ns as f64,
        energy_pj: busy_ns as f64,
        quality_per_area: goodput / queue_cap as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_lane_evaluates_its_default() {
        for lane in Lane::all() {
            let o = lane
                .evaluate(&lane.default_point())
                .unwrap_or_else(|| panic!("{} default infeasible", lane.name()));
            assert!(o.latency_ns > 0.0, "{}", lane.name());
            assert!(o.energy_pj > 0.0, "{}", lane.name());
            assert!(o.quality_per_area > 0.0, "{}", lane.name());
        }
    }

    #[test]
    fn lane_evaluators_are_pure() {
        for lane in Lane::all() {
            let p = lane.default_point();
            assert_eq!(lane.evaluate(&p), lane.evaluate(&p), "{}", lane.name());
        }
    }

    #[test]
    fn crossbar_rejects_converterless_points() {
        use enw_core::tunable::AxisValue;
        let p = Lane::Crossbar.default_point().with("adc_bits", AxisValue::Int(0));
        assert_eq!(Lane::Crossbar.evaluate(&p), None);
    }

    #[test]
    fn cam_segments_trade_energy_for_latency() {
        use enw_core::tunable::AxisValue;
        let base = Lane::Cam.default_point();
        let o1 = Lane::Cam.evaluate(&base).expect("segments=1");
        let o4 = Lane::Cam.evaluate(&base.with("segments", AxisValue::Int(4))).expect("segments=4");
        assert!(o4.energy_pj < o1.energy_pj);
        assert!(o4.latency_ns > o1.latency_ns);
    }

    #[test]
    fn xmann_right_sized_chip_dominates_on_area() {
        use enw_core::tunable::AxisValue;
        let default = Lane::Xmann.default_point();
        let trimmed = default.with("total_tiles", AxisValue::Int(16));
        let od = Lane::Xmann.evaluate(&default).expect("default");
        let ot = Lane::Xmann.evaluate(&trimmed).expect("trimmed");
        assert!(ot.dominates(&od), "16-tile chip should dominate the 256-tile default");
    }
}
