//! The exploration engine: exhaustive grid pass plus seeded hill-climbs,
//! evaluated in parallel, bit-reproducible at any `ENW_THREADS`.
//!
//! Determinism contract: every parallel fan-out goes through
//! `enw_parallel::map_chunks` (chunk-ordered results) and every fold over
//! those results is serial and index-ordered. Randomness comes only from
//! per-restart `Rng64` streams seeded from [`SearchConfig::seed`], and
//! time only from the *virtual clock* — a counter advanced by each
//! evaluation's modeled latency — so trajectories and stamps are
//! identical across reruns and worker counts.

use crate::objective::{pareto_front, Candidate, Objectives};
use enw_core::numerics::rng::Rng64;
use enw_core::tunable::{ParamSpace, Point};
use enw_parallel::map_chunks;

/// Clock charge for an infeasible evaluation (the probe still "ran").
const INFEASIBLE_NS: u64 = 1;

/// Scalarization weight profiles `(latency, energy, quality)` cycled
/// across restarts so different climbs pull toward different corners of
/// the front.
const WEIGHT_PROFILES: &[(f64, f64, f64)] =
    &[(1.0, 1.0, 1.0), (3.0, 1.0, 1.0), (1.0, 3.0, 1.0), (1.0, 1.0, 3.0)];

/// Attempts to draw a feasible restart seed before giving up.
const SAMPLE_TRIES: usize = 32;

/// Knobs of one [`explore`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Levels per axis in the exhaustive grid pass.
    pub grid_levels: usize,
    /// Independent hill-climbs after the grid.
    pub restarts: usize,
    /// Maximum accepted moves per climb.
    pub hill_steps: usize,
    /// Root seed for the restart streams.
    pub seed: u64,
    /// Points per parallel evaluation chunk.
    pub eval_chunk: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { grid_levels: 3, restarts: 4, hill_steps: 8, seed: 20, eval_chunk: 8 }
    }
}

impl SearchConfig {
    /// The quick configuration `--smoke` runs use.
    pub fn smoke() -> Self {
        SearchConfig { grid_levels: 3, restarts: 2, hill_steps: 4, seed: 20, eval_chunk: 8 }
    }
}

/// What one [`explore`] run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Mutually non-dominated candidates, sorted by point key.
    pub front: Vec<Candidate>,
    /// Total evaluations (feasible + infeasible).
    pub evaluated: usize,
    /// Feasible evaluations.
    pub feasible: usize,
    /// Virtual clock after the last evaluation, ns.
    pub clock_ns: u64,
    /// Keys of the points each climb accepted, in order — the
    /// trajectory the determinism tests fingerprint.
    pub trajectory: Vec<String>,
}

/// Explores `space` against `eval`: one grid pass, then
/// [`SearchConfig::restarts`] seeded hill-climbs, pooling every feasible
/// evaluation into a Pareto front. `eval` returns `None` for infeasible
/// points; it must be pure — the engine may re-evaluate a point and
/// assumes equal results.
pub fn explore<E>(space: &ParamSpace, eval: &E, cfg: &SearchConfig) -> SearchResult
where
    E: Fn(&Point) -> Option<Objectives> + Sync,
{
    let mut pool: Vec<Candidate> = Vec::new();
    let mut clock_ns: u64 = 0;
    let mut evaluated = 0usize;
    let mut trajectory = Vec::new();

    // Phase 1: exhaustive grid.
    let grid = space.grid(cfg.grid_levels);
    let grid_objs = eval_batch(&grid, eval, cfg.eval_chunk);
    evaluated += grid.len();
    stamp_into(&mut pool, &mut clock_ns, &grid, &grid_objs);

    // Phase 2: hill-climbs. Each restart owns an independent RNG stream
    // and a scalarization profile; moves are strict improvements of the
    // scalarized score, ties broken by neighbor index.
    for r in 0..cfg.restarts {
        let mut rng = Rng64::new(cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r as u64 + 1)));
        let Some((mut here, start_obj)) = feasible_sample(space, eval, &mut rng) else {
            continue;
        };
        clock_ns += start_obj.latency_ns.max(0.0) as u64;
        evaluated += 1;
        pool.push(Candidate { point: here.clone(), objectives: start_obj, stamp_ns: clock_ns });
        trajectory.push(here.key());

        let reference = start_obj;
        let weights = WEIGHT_PROFILES[r % WEIGHT_PROFILES.len()];
        let mut here_score = scalarize(&start_obj, &reference, weights);
        for _ in 0..cfg.hill_steps {
            let neighbors = space.neighbors(&here);
            if neighbors.is_empty() {
                break;
            }
            let objs = eval_batch(&neighbors, eval, cfg.eval_chunk);
            evaluated += neighbors.len();
            stamp_into(&mut pool, &mut clock_ns, &neighbors, &objs);
            let best = objs
                .iter()
                .enumerate()
                .filter_map(|(i, o)| o.map(|o| (i, scalarize(&o, &reference, weights))))
                .fold(None, |acc: Option<(usize, f64)>, (i, s)| match acc {
                    Some((_, sb)) if sb <= s => acc,
                    _ => Some((i, s)),
                });
            match best {
                Some((i, score)) if score < here_score - 1e-12 => {
                    here = neighbors[i].clone();
                    here_score = score;
                    trajectory.push(here.key());
                }
                _ => break,
            }
        }
    }

    let feasible = pool.len();
    SearchResult { front: pareto_front(&pool), evaluated, feasible, clock_ns, trajectory }
}

/// Evaluates `points` in parallel, preserving point order.
fn eval_batch<E>(points: &[Point], eval: &E, chunk: usize) -> Vec<Option<Objectives>>
where
    E: Fn(&Point) -> Option<Objectives> + Sync,
{
    map_chunks(points.len(), chunk.max(1), |range| {
        range.map(|i| eval(&points[i])).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Serial, index-ordered clock advance + candidate stamping — the one
/// place evaluation results meet the virtual clock.
fn stamp_into(
    pool: &mut Vec<Candidate>,
    clock_ns: &mut u64,
    points: &[Point],
    objs: &[Option<Objectives>],
) {
    for (point, obj) in points.iter().zip(objs) {
        match obj {
            Some(o) => {
                *clock_ns += o.latency_ns.max(0.0) as u64;
                pool.push(Candidate { point: point.clone(), objectives: *o, stamp_ns: *clock_ns });
            }
            None => *clock_ns += INFEASIBLE_NS,
        }
    }
}

/// Draws sample points until one is feasible (bounded tries).
fn feasible_sample<E>(space: &ParamSpace, eval: &E, rng: &mut Rng64) -> Option<(Point, Objectives)>
where
    E: Fn(&Point) -> Option<Objectives> + Sync,
{
    for _ in 0..SAMPLE_TRIES {
        let p = space.sample(rng);
        if let Some(o) = eval(&p) {
            return Some((p, o));
        }
    }
    None
}

/// Scalarized score (lower is better): objectives normalized by the
/// restart's reference point, weighted by the restart profile.
fn scalarize(o: &Objectives, reference: &Objectives, w: (f64, f64, f64)) -> f64 {
    let norm = |v: f64, r: f64| if r.abs() > f64::EPSILON { v / r } else { v };
    w.0 * norm(o.latency_ns, reference.latency_ns) + w.1 * norm(o.energy_pj, reference.energy_pj)
        - w.2 * norm(o.quality_per_area, reference.quality_per_area)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enw_core::tunable::{AxisDomain, AxisSpec};
    use enw_parallel::with_threads;

    fn space2() -> ParamSpace {
        ParamSpace::new(vec![
            AxisSpec { name: "x", domain: AxisDomain::Int { min: 0, max: 16, step: 1 } },
            AxisSpec { name: "y", domain: AxisDomain::Int { min: 0, max: 16, step: 1 } },
        ])
    }

    /// A synthetic landscape with a clean latency/energy trade along x
    /// and a quality optimum at y = 11 (off the 3-level grid, so only
    /// the climbs find it).
    fn eval(p: &Point) -> Option<Objectives> {
        let x = p.int("x").ok()?;
        let y = p.int("y").ok()?;
        if x == 3 {
            return None; // an infeasible stripe
        }
        Some(Objectives {
            latency_ns: 10.0 + x as f64,
            energy_pj: 100.0 - 4.0 * x as f64,
            quality_per_area: 1.0 / (1.0 + (y - 11).unsigned_abs() as f64),
        })
    }

    #[test]
    fn explore_finds_the_off_grid_optimum() {
        let r = explore(&space2(), &eval, &SearchConfig::default());
        assert!(r.front.iter().any(|c| c.point.int("y") == Ok(11)), "front misses y=11");
        assert!(r.feasible > 0 && r.evaluated >= r.feasible);
    }

    #[test]
    fn front_members_are_mutually_non_dominated() {
        let r = explore(&space2(), &eval, &SearchConfig::smoke());
        assert!(r.front.len() >= 3);
        for a in &r.front {
            for b in &r.front {
                assert!(!a.objectives.dominates(&b.objectives) || a.point == b.point);
            }
        }
    }

    #[test]
    fn trajectories_and_stamps_are_thread_invariant() {
        let run =
            |n: usize| with_threads(n, || explore(&space2(), &eval, &SearchConfig::default()));
        let r1 = run(1);
        let r2 = run(2);
        let r8 = run(8);
        assert_eq!(r1, r2);
        assert_eq!(r1, r8);
        assert_eq!(r1, run(1), "rerun at the same thread count drifted");
        assert!(r1.clock_ns > 0);
    }

    #[test]
    fn infeasible_stripe_never_reaches_the_front() {
        let r = explore(&space2(), &eval, &SearchConfig::default());
        assert!(r.front.iter().all(|c| c.point.int("x") != Ok(3)));
    }
}
