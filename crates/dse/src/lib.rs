//! Deterministic design-space exploration over the workspace's
//! simulators (experiment E20; DESIGN.md, "Design-space exploration").
//!
//! The paper's closing argument is that emerging neural workloads and
//! their hardware must be *co-designed*; this crate makes that search
//! concrete. Every tunable subsystem — crossbar tile periphery, X-MANN
//! bank geometry, TCAM segmentation, recommendation-model shape,
//! serving-lane batching — exposes its configuration through the
//! [`enw_core::tunable::Tunable`] API, and the engine here explores each
//! [`lane`](lanes::Lane) with an exhaustive grid pass plus seeded
//! hill-climbs, evaluating candidates in parallel through
//! `enw-parallel` with bit-identical results at any `ENW_THREADS`.
//!
//! Outputs are Pareto fronts over modeled latency, energy and
//! quality-per-area ([`objective::pareto_front`]), and a deployment
//! selector ([`pick::pick_configs`]) that chooses per-lane hardware
//! under a fleet energy budget.
//!
//! # Quickstart
//!
//! ```
//! use enw_dse::lanes::Lane;
//! use enw_dse::search::{explore, SearchConfig};
//!
//! let lane = Lane::Cam;
//! let result = explore(&lane.space(), &|p| lane.evaluate(p), &SearchConfig::smoke());
//! assert!(result.front.len() >= 3);
//! ```

pub mod lanes;
pub mod objective;
pub mod pick;
pub mod search;

pub use lanes::Lane;
pub use objective::{pareto_front, Candidate, Objectives};
pub use pick::{pick_configs, DseError, Pick};
pub use search::{explore, SearchConfig, SearchResult};
