//! Typed failures for the MANN model-side crate.
//!
//! Embedding-training configuration used to be validated by asserts at
//! train time; [`crate::embedding::EmbeddingConfig::builder`] returns
//! `Result<_, MannError>` so degenerate setups are rejected at
//! construction, before any episode runs.

use std::error::Error;
use std::fmt;

/// Why a MANN configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MannError {
    /// A configuration violated a structural constraint.
    InvalidConfig {
        /// Which constraint failed.
        reason: &'static str,
    },
}

impl fmt::Display for MannError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MannError::InvalidConfig { reason } => write!(f, "invalid MANN config: {reason}"),
        }
    }
}

impl Error for MannError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_constraint() {
        let e = MannError::InvalidConfig { reason: "embed_dim must be non-zero" };
        assert!(e.to_string().contains("embed_dim"), "{e}");
    }
}
