//! The differentiable (attentional) memory at the heart of a MANN
//! (paper Sec. III).
//!
//! A Neural Turing Machine's external memory is a matrix `M` of `slots`
//! rows. Reads and writes are *soft*: an attention distribution over all
//! slots weights every row, which is what makes the memory differentiable —
//! and what makes it the performance bottleneck the paper's accelerators
//! target (every soft read/write touches every location).

use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;
use enw_numerics::vector::{self, softmax_into};

/// Similarity measure used for content-based addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Similarity {
    /// Cosine similarity — the conventional (GPU) MANN choice.
    Cosine,
    /// Raw dot product (what a crossbar computes in one operation).
    Dot,
    /// Negated L1 distance (CAM-friendly).
    NegL1,
    /// Negated L2 distance.
    NegL2,
    /// Negated L∞ distance (range-encoding-friendly).
    NegLinf,
}

impl Similarity {
    /// Similarity score between a query and one memory row (greater is
    /// more similar for every variant).
    pub fn score(self, query: &[f32], row: &[f32]) -> f32 {
        match self {
            Similarity::Cosine => vector::cosine_similarity(query, row),
            Similarity::Dot => vector::dot(query, row),
            Similarity::NegL1 => -vector::dist_l1(query, row),
            Similarity::NegL2 => -vector::dist_l2(query, row),
            Similarity::NegLinf => -vector::dist_linf(query, row),
        }
    }
}

/// A soft-addressable memory matrix.
///
/// # Example
///
/// ```
/// use enw_mann::memory::{DifferentiableMemory, Similarity};
///
/// let mut mem = DifferentiableMemory::new(4, 3);
/// mem.write_slot(0, &[1.0, 0.0, 0.0]);
/// let w = mem.content_address(&[1.0, 0.1, 0.0], Similarity::Cosine, 5.0);
/// assert_eq!(w.len(), 4);
/// let r = mem.soft_read(&w);
/// assert_eq!(r.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentiableMemory {
    data: Matrix,
}

impl DifferentiableMemory {
    /// An all-zero memory of `slots × dim`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(slots: usize, dim: usize) -> Self {
        DifferentiableMemory { data: Matrix::zeros(slots, dim) }
    }

    /// A memory with small random contents (useful for benchmarks).
    pub fn random(slots: usize, dim: usize, rng: &mut Rng64) -> Self {
        DifferentiableMemory { data: Matrix::random_uniform(slots, dim, -0.5, 0.5, rng) }
    }

    /// Number of memory slots.
    pub fn slots(&self) -> usize {
        self.data.rows()
    }

    /// Word width.
    pub fn dim(&self) -> usize {
        self.data.cols()
    }

    /// The raw memory matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.data
    }

    /// Overwrites one slot exactly (a "hard" write).
    ///
    /// # Panics
    ///
    /// Panics if out of range or the word width mismatches.
    pub fn write_slot(&mut self, slot: usize, word: &[f32]) {
        assert_eq!(word.len(), self.dim(), "word width mismatch");
        self.data.row_mut(slot).copy_from_slice(word);
    }

    /// One slot's contents.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn slot(&self, slot: usize) -> &[f32] {
        self.data.row(slot)
    }

    /// Similarity of `query` against *every* slot — the all-locations scan
    /// that dominates MANN runtime on conventional hardware.
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches.
    pub fn similarities(&self, query: &[f32], sim: Similarity) -> Vec<f32> {
        let mut out = vec![0.0f32; self.slots()];
        self.similarities_into(query, sim, &mut out);
        out
    }

    /// [`similarities`](DifferentiableMemory::similarities) into a
    /// caller-owned buffer of `slots` scores (`out` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if the query width or output length mismatches.
    // enw:hot
    pub fn similarities_into(&self, query: &[f32], sim: Similarity, out: &mut [f32]) {
        assert_eq!(query.len(), self.dim(), "query width mismatch");
        assert_eq!(out.len(), self.slots(), "similarity output length mismatch");
        let (slots, dim) = (self.slots() as u64, self.dim() as u64);
        enw_trace::record_span_io(
            "mann/similarity_scan",
            slots * dim,
            4 * (slots * dim + dim),
            4 * slots,
        );
        for (s, o) in out.iter_mut().enumerate() {
            *o = sim.score(query, self.data.row(s));
        }
    }

    /// Content-based addressing: softmax (inverse temperature `beta`) over
    /// the similarity scores.
    pub fn content_address(&self, query: &[f32], sim: Similarity, beta: f32) -> Vec<f32> {
        let mut out = vec![0.0f32; self.slots()];
        self.content_address_into(query, sim, beta, &mut out);
        out
    }

    /// [`content_address`](DifferentiableMemory::content_address) into a
    /// caller-owned buffer (`out` is fully overwritten); the intermediate
    /// similarity scores live in thread-local scratch.
    ///
    /// # Panics
    ///
    /// Panics if the query width or output length mismatches.
    // enw:hot
    pub fn content_address_into(&self, query: &[f32], sim: Similarity, beta: f32, out: &mut [f32]) {
        let mut scores = enw_parallel::scratch::take_f32(self.slots());
        self.similarities_into(query, sim, &mut scores);
        softmax_into(&scores, beta, out);
    }

    /// Soft read `r = wᵀ·M`: every slot contributes per its attention
    /// weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != slots`.
    pub fn soft_read(&self, weights: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim()];
        self.soft_read_into(weights, &mut out);
        out
    }

    /// [`soft_read`](DifferentiableMemory::soft_read) into a caller-owned
    /// buffer of `dim` elements (`out` is fully overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != slots` or `out.len() != dim`.
    // enw:hot
    pub fn soft_read_into(&self, weights: &[f32], out: &mut [f32]) {
        assert_eq!(weights.len(), self.slots(), "weight length mismatch");
        self.data.matvec_t_into(weights, out);
    }

    /// Soft write with erase and add vectors (NTM semantics):
    /// `M[s] = M[s] ∘ (1 − w_s·erase) + w_s·add` for every slot `s`.
    ///
    /// # Panics
    ///
    /// Panics on any width mismatch.
    pub fn soft_write(&mut self, weights: &[f32], erase: &[f32], add: &[f32]) {
        assert_eq!(weights.len(), self.slots(), "weight length mismatch");
        assert_eq!(erase.len(), self.dim(), "erase width mismatch");
        assert_eq!(add.len(), self.dim(), "add width mismatch");
        for (s, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let row = self.data.row_mut(s);
            for ((m, &e), &a) in row.iter_mut().zip(erase).zip(add) {
                *m = *m * (1.0 - w * e) + w * a;
            }
        }
    }

    /// Index of the best-matching slot under `sim` (ties → lowest index).
    pub fn nearest(&self, query: &[f32], sim: Similarity) -> usize {
        let mut scores = enw_parallel::scratch::take_f32(self.slots());
        self.similarities_into(query, sim, &mut scores);
        vector::argmax(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem3() -> DifferentiableMemory {
        let mut m = DifferentiableMemory::new(3, 2);
        m.write_slot(0, &[1.0, 0.0]);
        m.write_slot(1, &[0.0, 1.0]);
        m.write_slot(2, &[-1.0, 0.0]);
        m
    }

    #[test]
    fn content_address_peaks_on_match() {
        let m = mem3();
        let w = m.content_address(&[1.0, 0.05], Similarity::Cosine, 10.0);
        assert!(w[0] > w[1] && w[0] > w[2]);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn nearest_matches_each_metric() {
        let m = mem3();
        for sim in [
            Similarity::Cosine,
            Similarity::Dot,
            Similarity::NegL1,
            Similarity::NegL2,
            Similarity::NegLinf,
        ] {
            assert_eq!(m.nearest(&[0.9, 0.0], sim), 0, "{sim:?}");
        }
    }

    #[test]
    fn soft_read_interpolates() {
        let m = mem3();
        let r = m.soft_read(&[0.5, 0.5, 0.0]);
        assert_eq!(r, vec![0.5, 0.5]);
    }

    #[test]
    fn hard_attention_reads_one_slot() {
        let m = mem3();
        assert_eq!(m.soft_read(&[0.0, 1.0, 0.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn soft_write_erase_and_add() {
        let mut m = mem3();
        // Fully focused on slot 1, erase everything, add [2, 3].
        m.soft_write(&[0.0, 1.0, 0.0], &[1.0, 1.0], &[2.0, 3.0]);
        assert_eq!(m.slot(1), &[2.0, 3.0]);
        assert_eq!(m.slot(0), &[1.0, 0.0]); // untouched
    }

    #[test]
    fn partial_attention_partially_writes() {
        let mut m = DifferentiableMemory::new(1, 1);
        m.write_slot(0, &[1.0]);
        m.soft_write(&[0.5], &[1.0], &[0.0]);
        assert_eq!(m.slot(0), &[0.5]);
    }

    #[test]
    fn similarities_length() {
        let m = mem3();
        assert_eq!(m.similarities(&[0.0, 0.0], Similarity::NegL2).len(), 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bad_query_width_panics() {
        mem3().similarities(&[1.0], Similarity::Cosine);
    }
}
