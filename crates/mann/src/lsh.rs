//! Locality-sensitive hashing with random hyperplanes (paper Sec. IV-B2,
//! refs. \[9\]\[56\]).
//!
//! A real-valued feature vector hashes to one bit per hyperplane: the sign
//! of its projection. Vectors at angle θ collide on each bit with
//! probability `1 − θ/π`, so the Hamming distance between signatures is a
//! monotone estimator of angular (cosine) distance — exactly what lets a
//! TCAM's native Hamming search stand in for the GPU's cosine similarity.

use enw_numerics::bits::BitVec;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

/// A random-hyperplane LSH encoder.
///
/// # Example
///
/// ```
/// use enw_mann::lsh::RandomHyperplaneLsh;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(3);
/// let lsh = RandomHyperplaneLsh::new(64, 8, &mut rng);
/// let sig = lsh.encode(&[1.0; 8]);
/// assert_eq!(sig.len(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomHyperplaneLsh {
    planes: Matrix, // planes x dim
}

impl RandomHyperplaneLsh {
    /// Draws `planes` Gaussian hyperplanes over `dim`-dimensional inputs.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(planes: usize, dim: usize, rng: &mut Rng64) -> Self {
        assert!(planes > 0 && dim > 0, "degenerate LSH");
        RandomHyperplaneLsh { planes: Matrix::random_normal(planes, dim, 0.0, 1.0, rng) }
    }

    /// Signature length in bits.
    pub fn planes(&self) -> usize {
        self.planes.rows()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.planes.cols()
    }

    /// Hashes a vector to its binary signature.
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    pub fn encode(&self, x: &[f32]) -> BitVec {
        let projections = self.planes.matvec(x);
        projections.iter().map(|&p| p >= 0.0).collect()
    }

    /// Theoretical per-bit collision probability for two vectors at angle
    /// `theta` radians: `1 − θ/π`.
    pub fn collision_probability(theta: f64) -> f64 {
        1.0 - theta / std::f64::consts::PI
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enw_numerics::vector::cosine_similarity;

    #[test]
    fn identical_vectors_collide_fully() {
        let mut rng = Rng64::new(1);
        let lsh = RandomHyperplaneLsh::new(32, 8, &mut rng);
        let v = [0.3f32, -0.2, 0.5, 0.0, 1.0, -1.0, 0.25, 0.75];
        assert_eq!(lsh.encode(&v).hamming(&lsh.encode(&v)), 0);
    }

    #[test]
    fn opposite_vectors_disagree_fully() {
        let mut rng = Rng64::new(2);
        let lsh = RandomHyperplaneLsh::new(64, 4, &mut rng);
        let v = [0.5f32, -0.25, 1.0, 0.1];
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        // Every projection flips sign (ignoring exact zeros, absent here).
        assert_eq!(lsh.encode(&v).hamming(&lsh.encode(&neg)), 64);
    }

    #[test]
    fn hamming_monotone_in_angle() {
        // Closer vectors (smaller angle) must produce smaller expected
        // Hamming distance.
        let mut rng = Rng64::new(3);
        let lsh = RandomHyperplaneLsh::new(512, 8, &mut rng);
        let base = [1.0f32, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let near = [0.9f32, 0.3, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let far = [0.0f32, 0.1, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let d_near = lsh.encode(&base).hamming(&lsh.encode(&near));
        let d_far = lsh.encode(&base).hamming(&lsh.encode(&far));
        assert!(d_near < d_far, "near {d_near}, far {d_far}");
    }

    #[test]
    fn empirical_collision_rate_matches_theory() {
        let mut rng = Rng64::new(4);
        let planes = 4096;
        let lsh = RandomHyperplaneLsh::new(planes, 2, &mut rng);
        // 60° apart in 2-D.
        let a = [1.0f32, 0.0];
        let b = [0.5f32, 3.0f32.sqrt() / 2.0];
        let theta = (cosine_similarity(&a, &b) as f64).acos();
        let ham = lsh.encode(&a).hamming(&lsh.encode(&b));
        let empirical = 1.0 - ham as f64 / planes as f64;
        let expected = RandomHyperplaneLsh::collision_probability(theta);
        assert!((empirical - expected).abs() < 0.03, "{empirical} vs {expected}");
    }

    #[test]
    fn scale_invariance() {
        // LSH depends only on direction.
        let mut rng = Rng64::new(5);
        let lsh = RandomHyperplaneLsh::new(64, 4, &mut rng);
        let v = [0.4f32, -0.1, 0.2, 0.9];
        let scaled: Vec<f32> = v.iter().map(|x| x * 7.5).collect();
        assert_eq!(lsh.encode(&v), lsh.encode(&scaled));
    }
}
