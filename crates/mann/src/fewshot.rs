//! Few-shot classification harness: one evaluation loop, four search
//! back-ends (paper Sec. IV-B).
//!
//! Every method classifies a query by retrieving the most similar support
//! example in embedding space; they differ in *how* the search executes:
//!
//! * [`SearchMethod::Exact`] — full-precision similarity over all stored
//!   vectors: the GPU-backed-by-DRAM baseline.
//! * [`SearchMethod::Quantized`] — same search on fixed-point embeddings.
//! * [`SearchMethod::RangeEncoded`] — the combined L∞+L2 TCAM approach
//!   \[48\]: BRGC-encoded fixed-point levels, L∞ cube queries of growing
//!   radius until the TCAM matches, exact L2 tie-break among matches.
//! * [`SearchMethod::Lsh`] — LSH binary signatures searched by Hamming
//!   distance \[9\]: one parallel TCAM search, no cube growth.

use crate::embedding::Embedder;
use crate::encoding::{cube_pattern, encode_levels};
use crate::lsh::RandomHyperplaneLsh;
use crate::memory::Similarity;
use enw_nn::fewshot::{Episode, EpisodeSampler, FewShotDomain};
use enw_numerics::bits::BitVec;
use enw_numerics::quant::Quantizer;
use enw_numerics::rng::Rng64;

/// How the memory search is performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchMethod {
    /// Full-precision nearest neighbour under the given similarity.
    Exact(Similarity),
    /// Fixed-point nearest neighbour: embeddings quantized to `bits`.
    Quantized {
        /// Fixed-point precision.
        bits: u32,
        /// Distance metric applied to the quantized values.
        metric: Similarity,
    },
    /// BRGC range encoding with growing L∞ cubes and L2 tie-break.
    RangeEncoded {
        /// Fixed-point precision (per-dimension level bits).
        bits: u32,
    },
    /// LSH signatures with Hamming-distance search.
    Lsh {
        /// Number of hyperplanes (signature bits).
        planes: usize,
    },
}

/// Outcome of a few-shot evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FewShotOutcome {
    /// Mean classification accuracy over all query points.
    pub accuracy: f64,
    /// Mean number of parallel memory searches per query (1 for exact,
    /// quantized and LSH; ≥ 1 for range encoding, which grows cubes).
    pub searches_per_query: f64,
}

/// Runs `episodes` N-way K-shot episodes with the given search method.
///
/// Support/query samples come from the *held-out* tail of the domain
/// (classes ≥ `holdout_from`), so the embedding never saw them.
///
/// # Panics
///
/// Panics if the held-out class range is smaller than `sampler.n_way`.
pub fn evaluate<E: Embedder>(
    net: &mut E,
    domain: &FewShotDomain,
    sampler: EpisodeSampler,
    holdout_from: usize,
    method: SearchMethod,
    episodes: usize,
    rng: &mut Rng64,
) -> FewShotOutcome {
    let holdout_classes = domain.num_classes() - holdout_from;
    assert!(
        holdout_classes >= sampler.n_way,
        "only {holdout_classes} held-out classes for {}-way episodes",
        sampler.n_way
    );
    // LSH planes are drawn once and shared across episodes (they are part
    // of the deployed network, not per-episode state).
    let lsh = match method {
        SearchMethod::Lsh { planes } => {
            Some(RandomHyperplaneLsh::new(planes, net.embed_dim(), rng))
        }
        _ => None,
    };
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut searches = 0u64;
    for _ in 0..episodes {
        let episode = sample_holdout_episode(domain, sampler, holdout_from, rng);
        let support: Vec<(Vec<f32>, usize)> =
            episode.support.iter().map(|(x, l)| (net.embed(x), *l)).collect();
        for (xq, label) in &episode.query {
            let q = net.embed(xq);
            let (pred, n_searches) = classify(&q, &support, method, lsh.as_ref());
            if pred == *label {
                correct += 1;
            }
            total += 1;
            searches += n_searches;
        }
    }
    FewShotOutcome {
        accuracy: correct as f64 / total as f64,
        searches_per_query: searches as f64 / total as f64,
    }
}

/// Episodes handled per parallel chunk in [`evaluate_par`]. One episode
/// per chunk: each already embeds a full support/query set, and episode
/// costs are even, so fine chunks balance best.
const PAR_EPISODE_CHUNK: usize = 1;

/// Parallel variant of [`evaluate`]: episodes are drawn serially up front
/// on the caller's RNG — the exact stream the serial loop consumes — then
/// embedded and classified concurrently on clones of the (pure-inference)
/// embedder, in fixed per-episode chunks. The outcome is identical to
/// [`evaluate`] at any thread count.
///
/// # Panics
///
/// Panics if the held-out class range is smaller than `sampler.n_way`.
pub fn evaluate_par<E: Embedder + Clone + Send + Sync>(
    net: &mut E,
    domain: &FewShotDomain,
    sampler: EpisodeSampler,
    holdout_from: usize,
    method: SearchMethod,
    episodes: usize,
    rng: &mut Rng64,
) -> FewShotOutcome {
    let holdout_classes = domain.num_classes() - holdout_from;
    assert!(
        holdout_classes >= sampler.n_way,
        "only {holdout_classes} held-out classes for {}-way episodes",
        sampler.n_way
    );
    let lsh = match method {
        SearchMethod::Lsh { planes } => {
            Some(RandomHyperplaneLsh::new(planes, net.embed_dim(), rng))
        }
        _ => None,
    };
    let drawn: Vec<Episode> =
        (0..episodes).map(|_| sample_holdout_episode(domain, sampler, holdout_from, rng)).collect();
    let run_episode = |net: &mut E, episode: &Episode| -> (usize, usize, u64) {
        let support: Vec<(Vec<f32>, usize)> =
            episode.support.iter().map(|(x, l)| (net.embed(x), *l)).collect();
        let mut tally = (0usize, 0usize, 0u64);
        for (xq, label) in &episode.query {
            let q = net.embed(xq);
            let (pred, n_searches) = classify(&q, &support, method, lsh.as_ref());
            if pred == *label {
                tally.0 += 1;
            }
            tally.1 += 1;
            tally.2 += n_searches;
        }
        tally
    };
    // Per-episode work estimate for the shared `plan_chunks` gate: every
    // sample is embedded (a network forward — at least `embed_dim` work
    // per sample, usually far more) and every query is scored against
    // every support embedding. Derived from the sampler configuration
    // only, so the gate is deterministic for a given evaluation setup.
    let samples = sampler.n_way * (sampler.k_shot + sampler.n_query);
    let compares = sampler.n_way * sampler.n_query * sampler.n_way * sampler.k_shot;
    let per_episode = (samples + compares) * net.embed_dim();
    let tallies: Vec<(usize, usize, u64)> =
        if enw_parallel::plan_chunks(drawn.len(), per_episode).is_some() {
            let proto: &E = net;
            enw_parallel::map_chunks(drawn.len(), PAR_EPISODE_CHUNK, |r| {
                let mut worker_net = proto.clone();
                r.map(|e| run_episode(&mut worker_net, &drawn[e])).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            drawn.iter().map(|e| run_episode(net, e)).collect()
        };
    let (correct, total, searches) =
        tallies.into_iter().fold((0usize, 0usize, 0u64), |a, t| (a.0 + t.0, a.1 + t.1, a.2 + t.2));
    FewShotOutcome {
        accuracy: correct as f64 / total as f64,
        searches_per_query: searches as f64 / total as f64,
    }
}

/// Samples an episode restricted to the held-out classes.
fn sample_holdout_episode(
    domain: &FewShotDomain,
    sampler: EpisodeSampler,
    holdout_from: usize,
    rng: &mut Rng64,
) -> Episode {
    let holdout = domain.num_classes() - holdout_from;
    let picked = rng.sample_indices(holdout, sampler.n_way);
    let mut support = Vec::with_capacity(sampler.n_way * sampler.k_shot);
    let mut query = Vec::with_capacity(sampler.n_way * sampler.n_query);
    for (local, &offset) in picked.iter().enumerate() {
        let cid = holdout_from + offset;
        for _ in 0..sampler.k_shot {
            support.push((domain.sample(cid, rng), local));
        }
        for _ in 0..sampler.n_query {
            query.push((domain.sample(cid, rng), local));
        }
    }
    Episode { support, query }
}

/// Classifies by majority vote over the `k` most similar supports (ties
/// broken toward the closer neighbour). `k = 1` reduces to nearest
/// neighbour. On a TCAM this is realized by `k` consecutive searches with
/// previously-matched lines masked, so `searches = k` for hardware-backed
/// methods — the multi-reference cost the paper notes for binary
/// comparators.
///
/// # Panics
///
/// Panics if `support` is empty or `k == 0`.
pub fn classify_knn(
    query: &[f32],
    support: &[(Vec<f32>, usize)],
    metric: Similarity,
    k: usize,
) -> (usize, u64) {
    assert!(!support.is_empty(), "empty support set");
    assert!(k > 0, "k must be positive");
    let mut scored: Vec<(f32, usize)> =
        support.iter().map(|(s, label)| (metric.score(query, s), *label)).collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let k = k.min(scored.len());
    // Ordered map: vote iteration must not depend on hash order
    // (enw-analyze rule ENW-D001).
    let mut votes = std::collections::BTreeMap::new();
    for &(_, label) in &scored[..k] {
        *votes.entry(label).or_insert(0usize) += 1;
    }
    let max_votes = votes.values().copied().max().unwrap_or(0);
    // Tie-break: the highest-ranked neighbour among tied labels wins;
    // `find` cannot miss because `k >= 1` after clamping.
    let winner = scored[..k]
        .iter()
        .find(|(_, l)| votes.get(l).copied() == Some(max_votes))
        .map_or(0, |&(_, l)| l);
    (winner, k as u64)
}

/// Classifies one embedded query against embedded supports; returns the
/// predicted label and the number of parallel searches used.
///
/// # Panics
///
/// Panics if `support` is empty, or if `method` is [`SearchMethod::Lsh`]
/// and no prepared encoder is supplied.
pub fn classify(
    query: &[f32],
    support: &[(Vec<f32>, usize)],
    method: SearchMethod,
    lsh: Option<&RandomHyperplaneLsh>,
) -> (usize, u64) {
    assert!(!support.is_empty(), "empty support set");
    match method {
        SearchMethod::Exact(sim) => {
            let mut best = (f32::NEG_INFINITY, 0usize);
            for (s, label) in support {
                let score = sim.score(query, s);
                if score > best.0 {
                    best = (score, *label);
                }
            }
            (best.1, 1)
        }
        SearchMethod::Quantized { bits, metric } => {
            let q = fit_episode_quantizer(bits, query, support);
            let dq: Vec<f32> = query.iter().map(|&v| q.round_trip(v)).collect();
            let mut best = (f32::NEG_INFINITY, 0usize);
            for (s, label) in support {
                let ds: Vec<f32> = s.iter().map(|&v| q.round_trip(v)).collect();
                let score = metric.score(&dq, &ds);
                if score > best.0 {
                    best = (score, *label);
                }
            }
            (best.1, 1)
        }
        SearchMethod::RangeEncoded { bits } => {
            let q = fit_episode_quantizer(bits, query, support);
            let q_levels = q.to_levels(query);
            let stored: Vec<(Vec<u32>, BitVec, usize)> = support
                .iter()
                .map(|(s, label)| {
                    let levels = q.to_levels(s);
                    let code = encode_levels(&levels, bits);
                    (levels, code, *label)
                })
                .collect();
            let max_level = (1u32 << bits) - 1;
            let mut n_searches = 0u64;
            for radius in 0..=max_level {
                n_searches += 1;
                let pattern = cube_pattern(&q_levels, radius, bits);
                // All stored words inside the cube (one parallel TCAM op).
                let hits: Vec<&(Vec<u32>, BitVec, usize)> =
                    stored.iter().filter(|(_, code, _)| pattern.matches(code)).collect();
                if !hits.is_empty() {
                    // L2 tie-break among the cube hits (the SFU step of the
                    // combined L∞+L2 method).
                    let mut best = (f64::INFINITY, hits[0].2);
                    for (levels, _, label) in hits {
                        let d2: f64 = levels
                            .iter()
                            .zip(&q_levels)
                            .map(|(&a, &b)| {
                                let d = a as f64 - b as f64;
                                d * d
                            })
                            .sum();
                        if d2 < best.0 {
                            best = (d2, *label);
                        }
                    }
                    return (best.1, n_searches);
                }
            }
            // The full-range cube matches everything, so this is
            // unreachable; fall back defensively.
            (stored[0].2, n_searches)
        }
        SearchMethod::Lsh { .. } => {
            let lsh = lsh.expect("LSH method requires a prepared encoder");
            let sig_q = lsh.encode(query);
            let mut best = (usize::MAX, 0usize);
            for (s, label) in support {
                let d = sig_q.hamming(&lsh.encode(s));
                if d < best.0 {
                    best = (d, *label);
                }
            }
            (best.1, 1)
        }
    }
}

/// Per-episode quantizer fitted over the query and every support vector —
/// the "convert floating point features to fixed point" step of \[48\].
fn fit_episode_quantizer(bits: u32, query: &[f32], support: &[(Vec<f32>, usize)]) -> Quantizer {
    let mut all: Vec<f32> = query.to_vec();
    for (s, _) in support {
        all.extend_from_slice(s);
    }
    Quantizer::fit(bits, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{EmbeddingConfig, EmbeddingNet};

    fn setup(seed: u64) -> (EmbeddingNet, FewShotDomain, Rng64) {
        let mut rng = Rng64::new(seed);
        let domain = FewShotDomain::generate(30, 48, &mut rng);
        let cfg = EmbeddingConfig {
            hidden: vec![48],
            embed_dim: 16,
            background_classes: 15,
            samples_per_class: 20,
            epochs: 6,
            learning_rate: 0.05,
        };
        let net = EmbeddingNet::train(&domain, &cfg, &mut rng);
        (net, domain, rng)
    }

    const SAMPLER: EpisodeSampler = EpisodeSampler { n_way: 5, k_shot: 1, n_query: 3 };

    #[test]
    fn exact_cosine_beats_chance_clearly() {
        let (mut net, domain, mut rng) = setup(1);
        let out = evaluate(
            &mut net,
            &domain,
            SAMPLER,
            15,
            SearchMethod::Exact(Similarity::Cosine),
            20,
            &mut rng,
        );
        assert!(out.accuracy > 0.5, "accuracy {} (chance 0.2)", out.accuracy);
        assert_eq!(out.searches_per_query, 1.0);
    }

    #[test]
    fn quantized_close_to_exact() {
        let (mut net, domain, mut rng) = setup(2);
        let exact = evaluate(
            &mut net,
            &domain,
            SAMPLER,
            15,
            SearchMethod::Exact(Similarity::NegL2),
            15,
            &mut Rng64::new(42),
        );
        let quant = evaluate(
            &mut net,
            &domain,
            SAMPLER,
            15,
            SearchMethod::Quantized { bits: 6, metric: Similarity::NegL2 },
            15,
            &mut Rng64::new(42),
        );
        let _ = &mut rng;
        assert!(
            quant.accuracy > exact.accuracy - 0.15,
            "quantized {} vs exact {}",
            quant.accuracy,
            exact.accuracy
        );
    }

    #[test]
    fn range_encoding_works_and_uses_multiple_searches() {
        let (mut net, domain, mut rng) = setup(3);
        let out = evaluate(
            &mut net,
            &domain,
            SAMPLER,
            15,
            SearchMethod::RangeEncoded { bits: 4 },
            15,
            &mut rng,
        );
        assert!(out.accuracy > 0.4, "accuracy {}", out.accuracy);
        assert!(out.searches_per_query >= 1.0);
    }

    #[test]
    fn lsh_accuracy_improves_with_planes() {
        let (mut net, domain, _) = setup(4);
        let few = evaluate(
            &mut net,
            &domain,
            SAMPLER,
            15,
            SearchMethod::Lsh { planes: 4 },
            20,
            &mut Rng64::new(7),
        );
        let many = evaluate(
            &mut net,
            &domain,
            SAMPLER,
            15,
            SearchMethod::Lsh { planes: 256 },
            20,
            &mut Rng64::new(7),
        );
        assert!(
            many.accuracy >= few.accuracy,
            "256 planes {} < 4 planes {}",
            many.accuracy,
            few.accuracy
        );
    }

    #[test]
    fn evaluate_par_matches_serial_evaluate_exactly() {
        let (mut net, domain, _) = setup(5);
        for method in [
            SearchMethod::Exact(Similarity::Cosine),
            SearchMethod::RangeEncoded { bits: 4 },
            SearchMethod::Lsh { planes: 32 },
        ] {
            let serial = evaluate(&mut net, &domain, SAMPLER, 15, method, 10, &mut Rng64::new(11));
            for threads in [1usize, 3, 8] {
                let par = enw_parallel::with_threads(threads, || {
                    evaluate_par(&mut net, &domain, SAMPLER, 15, method, 10, &mut Rng64::new(11))
                });
                assert_eq!(serial, par, "{method:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn classify_single_support_is_trivial() {
        let support = vec![(vec![1.0f32, 0.0], 3usize)];
        let (pred, _) =
            classify(&[0.5, 0.5], &support, SearchMethod::Exact(Similarity::Cosine), None);
        assert_eq!(pred, 3);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn empty_support_panics() {
        classify(&[1.0], &[], SearchMethod::Exact(Similarity::Cosine), None);
    }

    #[test]
    fn knn_k1_matches_nearest() {
        let support = vec![(vec![1.0f32, 0.0], 0usize), (vec![0.0, 1.0], 1), (vec![0.9, 0.1], 0)];
        let (p_knn, searches) = classify_knn(&[0.8, 0.2], &support, Similarity::Cosine, 1);
        let (p_nn, _) =
            classify(&[0.8, 0.2], &support, SearchMethod::Exact(Similarity::Cosine), None);
        assert_eq!(p_knn, p_nn);
        assert_eq!(searches, 1);
    }

    #[test]
    fn knn_majority_overrides_single_outlier() {
        // Nearest single neighbour is class 1, but classes 0 holds the
        // 3-NN majority.
        let support = vec![
            (vec![1.0f32, 0.05], 1usize), // closest
            (vec![0.9, 0.2], 0),
            (vec![0.9, 0.25], 0),
            (vec![-1.0, 0.0], 1),
        ];
        let (p1, _) = classify_knn(&[1.0, 0.1], &support, Similarity::Cosine, 1);
        let (p3, searches) = classify_knn(&[1.0, 0.1], &support, Similarity::Cosine, 3);
        assert_eq!(p1, 1);
        assert_eq!(p3, 0);
        assert_eq!(searches, 3);
    }

    #[test]
    fn knn_k_larger_than_support_is_clamped() {
        let support = vec![(vec![1.0f32], 7usize)];
        let (p, searches) = classify_knn(&[1.0], &support, Similarity::NegL2, 10);
        assert_eq!(p, 7);
        assert_eq!(searches, 1);
    }
}
