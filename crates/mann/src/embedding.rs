//! Learned feature embeddings for few-shot memory lookups.
//!
//! The TCAM-MANN studies \[9\]\[48\] obtain feature vectors from a
//! conventionally trained network: a classifier is trained on *background*
//! classes, its output layer is stripped, and the penultimate activations
//! become the embedding that the external memory stores and searches.
//! Held-out classes — never seen during training — are then classified by
//! nearest-neighbour search in that embedding space, which is what makes
//! the evaluation genuinely "few-shot".

use enw_nn::activation::Activation;
use enw_nn::conv::{ConvNet, ConvNetConfig, MapShape};
use enw_nn::data::Dataset;
use enw_nn::fewshot::FewShotDomain;
use enw_nn::mlp::{Mlp, SgdConfig};
use enw_nn::DigitalLinear;
use enw_numerics::matrix::Matrix;
use enw_numerics::rng::Rng64;

/// Anything that maps raw inputs to feature embeddings.
///
/// The few-shot harness is generic over this trait so the same episodes
/// run on MLP embeddings ([`EmbeddingNet`]) and CNN embeddings
/// ([`ConvEmbeddingNet`] — the architecture the source papers use).
pub trait Embedder {
    /// Embedding dimensionality.
    fn embed_dim(&self) -> usize;

    /// Maps one raw input to its feature vector.
    fn embed(&mut self, x: &[f32]) -> Vec<f32>;
}

/// Training configuration for the embedding network.
///
/// Construct via [`EmbeddingConfig::builder`]; direct struct-literal
/// construction in downstream code is deprecated (it bypasses
/// validation and will stop compiling as fields are added).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingConfig {
    /// Hidden layer widths between input and the embedding layer.
    pub hidden: Vec<usize>,
    /// Embedding dimensionality (penultimate layer width).
    pub embed_dim: usize,
    /// Number of (lowest-indexed) domain classes used for background
    /// training; the rest stay held out for episodes.
    pub background_classes: usize,
    /// Training samples drawn per background class.
    pub samples_per_class: usize,
    /// SGD passes.
    pub epochs: usize,
    /// SGD step size.
    pub learning_rate: f32,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            hidden: vec![64],
            embed_dim: 32,
            background_classes: 20,
            samples_per_class: 30,
            epochs: 8,
            learning_rate: 0.05,
        }
    }
}

impl EmbeddingConfig {
    /// Starts a validating builder seeded with the default configuration.
    pub fn builder() -> EmbeddingConfigBuilder {
        EmbeddingConfigBuilder { cfg: EmbeddingConfig::default() }
    }
}

/// Validating builder for [`EmbeddingConfig`].
///
/// `build()` rejects setups that cannot train (no background classes to
/// hold out against, empty episodes, degenerate schedules) with a typed
/// [`MannError`](crate::error::MannError), before any episode runs.
#[derive(Debug, Clone)]
pub struct EmbeddingConfigBuilder {
    cfg: EmbeddingConfig,
}

impl EmbeddingConfigBuilder {
    /// Sets hidden layer widths between input and the embedding layer.
    pub fn hidden(mut self, hidden: Vec<usize>) -> Self {
        self.cfg.hidden = hidden;
        self
    }

    /// Sets the embedding dimensionality.
    pub fn embed_dim(mut self, embed_dim: usize) -> Self {
        self.cfg.embed_dim = embed_dim;
        self
    }

    /// Sets the number of background-training classes.
    pub fn background_classes(mut self, background_classes: usize) -> Self {
        self.cfg.background_classes = background_classes;
        self
    }

    /// Sets training samples drawn per background class.
    pub fn samples_per_class(mut self, samples_per_class: usize) -> Self {
        self.cfg.samples_per_class = samples_per_class;
        self
    }

    /// Sets SGD passes.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Sets the SGD step size.
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.cfg.learning_rate = learning_rate;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<EmbeddingConfig, crate::error::MannError> {
        use crate::error::MannError;
        if self.cfg.embed_dim == 0 {
            return Err(MannError::InvalidConfig { reason: "embed_dim must be non-zero" });
        }
        if self.cfg.hidden.contains(&0) {
            return Err(MannError::InvalidConfig { reason: "hidden widths must be non-zero" });
        }
        if self.cfg.background_classes < 2 {
            return Err(MannError::InvalidConfig {
                reason: "background_classes must be at least 2",
            });
        }
        if self.cfg.samples_per_class == 0 {
            return Err(MannError::InvalidConfig {
                reason: "samples_per_class must be at least 1",
            });
        }
        if self.cfg.epochs == 0 {
            return Err(MannError::InvalidConfig { reason: "epochs must be at least 1" });
        }
        if !self.cfg.learning_rate.is_finite() || self.cfg.learning_rate <= 0.0 {
            return Err(MannError::InvalidConfig {
                reason: "learning_rate must be finite and positive",
            });
        }
        Ok(self.cfg)
    }
}

/// A trained embedding: a classifier with its softmax head ignored.
///
/// # Example
///
/// ```
/// use enw_mann::embedding::{EmbeddingConfig, EmbeddingNet};
/// use enw_nn::fewshot::FewShotDomain;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(11);
/// let domain = FewShotDomain::generate(30, 32, &mut rng);
/// let cfg = EmbeddingConfig {
///     background_classes: 10,
///     samples_per_class: 5,
///     epochs: 1,
///     ..Default::default()
/// };
/// let mut net = EmbeddingNet::train(&domain, &cfg, &mut rng);
/// let e = net.embed(&domain.sample(25, &mut rng));
/// assert_eq!(e.len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingNet {
    mlp: Mlp<DigitalLinear>,
    embed_dim: usize,
}

impl EmbeddingNet {
    /// Trains a background classifier on the first
    /// `cfg.background_classes` classes of the domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain has fewer classes than
    /// `cfg.background_classes`, or the config is degenerate.
    pub fn train(domain: &FewShotDomain, cfg: &EmbeddingConfig, rng: &mut Rng64) -> Self {
        assert!(cfg.background_classes > 1, "need at least two background classes");
        assert!(
            cfg.background_classes <= domain.num_classes(),
            "domain has {} classes, background needs {}",
            domain.num_classes(),
            cfg.background_classes
        );
        // Build the background dataset.
        let n = cfg.background_classes * cfg.samples_per_class;
        let mut inputs = Matrix::zeros(n, domain.dim());
        let mut labels = Vec::with_capacity(n);
        let mut row = 0;
        for c in 0..cfg.background_classes {
            for _ in 0..cfg.samples_per_class {
                let s = domain.sample(c, rng);
                inputs.row_mut(row).copy_from_slice(&s);
                labels.push(c);
                row += 1;
            }
        }
        let data = Dataset::new(inputs, labels, cfg.background_classes);
        // Classifier: input → hidden… → embed_dim → classes.
        let mut dims = vec![domain.dim()];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(cfg.embed_dim);
        dims.push(cfg.background_classes);
        let mut mlp = Mlp::digital(&dims, Activation::Tanh, rng);
        mlp.train_sgd(
            &data,
            &SgdConfig { epochs: cfg.epochs, learning_rate: cfg.learning_rate },
            rng,
        );
        EmbeddingNet { mlp, embed_dim: cfg.embed_dim }
    }

    /// Embedding dimensionality.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Maps a raw input to its feature embedding (all layers except the
    /// classification head).
    pub fn embed(&mut self, x: &[f32]) -> Vec<f32> {
        let n_layers = self.mlp.layers().len();
        let mut a = x.to_vec();
        for layer in self.mlp.layers_mut().iter_mut().take(n_layers - 1) {
            a = layer.infer(&a);
        }
        a
    }
}

impl Embedder for EmbeddingNet {
    fn embed_dim(&self) -> usize {
        EmbeddingNet::embed_dim(self)
    }

    fn embed(&mut self, x: &[f32]) -> Vec<f32> {
        EmbeddingNet::embed(self, x)
    }
}

/// A CNN-backed embedding: the "4-layer convolutional NN" architecture of
/// ref. \[48\], at workspace scale. The domain's 1-D canvas is reshaped to
/// a square image (so the domain dimensionality must be a perfect
/// square).
#[derive(Debug, Clone)]
pub struct ConvEmbeddingNet {
    net: ConvNet,
}

impl ConvEmbeddingNet {
    /// Trains a CNN background classifier analogous to
    /// [`EmbeddingNet::train`]; `cfg.hidden` is reinterpreted as the conv
    /// stage channel counts.
    ///
    /// # Panics
    ///
    /// Panics if the domain dimensionality is not a perfect square, or on
    /// the same config violations as [`EmbeddingNet::train`].
    pub fn train(domain: &FewShotDomain, cfg: &EmbeddingConfig, rng: &mut Rng64) -> Self {
        assert!(cfg.background_classes > 1, "need at least two background classes");
        assert!(
            cfg.background_classes <= domain.num_classes(),
            "domain has {} classes, background needs {}",
            domain.num_classes(),
            cfg.background_classes
        );
        let side = (domain.dim() as f64).sqrt() as usize;
        assert_eq!(side * side, domain.dim(), "domain dim must be a perfect square for a CNN");
        let n = cfg.background_classes * cfg.samples_per_class;
        let mut inputs = Matrix::zeros(n, domain.dim());
        let mut labels = Vec::with_capacity(n);
        let mut row = 0;
        for c in 0..cfg.background_classes {
            for _ in 0..cfg.samples_per_class {
                let s = domain.sample(c, rng);
                inputs.row_mut(row).copy_from_slice(&s);
                labels.push(c);
                row += 1;
            }
        }
        let data = Dataset::new(inputs, labels, cfg.background_classes);
        let conv_cfg = ConvNetConfig {
            input: MapShape { channels: 1, height: side, width: side },
            conv_channels: cfg.hidden.clone(),
            embed_dim: cfg.embed_dim,
            classes: cfg.background_classes,
        };
        let mut net = ConvNet::new(&conv_cfg, rng);
        net.train(&data, cfg.epochs, cfg.learning_rate, rng);
        ConvEmbeddingNet { net }
    }
}

impl Embedder for ConvEmbeddingNet {
    fn embed_dim(&self) -> usize {
        self.net.embed_dim()
    }

    fn embed(&mut self, x: &[f32]) -> Vec<f32> {
        self.net.embed(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enw_numerics::vector::dist_l2;

    fn quick_cfg() -> EmbeddingConfig {
        EmbeddingConfig {
            hidden: vec![48],
            embed_dim: 16,
            background_classes: 12,
            samples_per_class: 15,
            epochs: 6,
            learning_rate: 0.05,
        }
    }

    #[test]
    fn embedding_has_configured_dimension() {
        let mut rng = Rng64::new(1);
        let domain = FewShotDomain::generate(20, 32, &mut rng);
        let mut net = EmbeddingNet::train(&domain, &quick_cfg(), &mut rng);
        assert_eq!(net.embed(&domain.sample(0, &mut rng)).len(), 16);
        assert_eq!(net.embed_dim(), 16);
    }

    #[test]
    fn embedding_clusters_held_out_classes() {
        // The transfer property the whole pipeline rests on: classes never
        // seen in training still form clusters in embedding space.
        let mut rng = Rng64::new(2);
        let domain = FewShotDomain::generate(24, 48, &mut rng);
        let mut net = EmbeddingNet::train(&domain, &quick_cfg(), &mut rng);
        let held_out = [14usize, 17, 21];
        let mut intra = 0.0f64;
        let mut inter = 0.0f64;
        let mut n = 0;
        for (idx, &c) in held_out.iter().enumerate() {
            let a = net.embed(&domain.sample(c, &mut rng));
            let b = net.embed(&domain.sample(c, &mut rng));
            let other_class = held_out[(idx + 1) % held_out.len()];
            let o = net.embed(&domain.sample(other_class, &mut rng));
            intra += dist_l2(&a, &b) as f64;
            inter += dist_l2(&a, &o) as f64;
            n += 1;
        }
        assert!(
            inter / n as f64 > intra / n as f64,
            "embedding does not cluster held-out classes: intra {intra}, inter {inter}"
        );
    }

    #[test]
    fn conv_embedding_trains_and_clusters() {
        let mut rng = Rng64::new(8);
        // 64-dim canvas → 8×8 image for the CNN.
        let domain = FewShotDomain::generate(20, 64, &mut rng);
        let cfg = EmbeddingConfig {
            hidden: vec![6], // one conv stage with 6 channels
            embed_dim: 16,
            background_classes: 10,
            samples_per_class: 12,
            epochs: 4,
            learning_rate: 0.03,
        };
        let mut net = ConvEmbeddingNet::train(&domain, &cfg, &mut rng);
        assert_eq!(Embedder::embed_dim(&net), 16);
        let a = net.embed(&domain.sample(15, &mut rng));
        let b = net.embed(&domain.sample(15, &mut rng));
        let o = net.embed(&domain.sample(18, &mut rng));
        assert!(dist_l2(&a, &b) < dist_l2(&a, &o) + 1.0, "embeddings degenerate");
        assert_eq!(a.len(), 16);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn conv_embedding_rejects_non_square_domain() {
        let mut rng = Rng64::new(9);
        let domain = FewShotDomain::generate(6, 30, &mut rng);
        let cfg = EmbeddingConfig {
            background_classes: 3,
            samples_per_class: 2,
            epochs: 1,
            ..quick_cfg()
        };
        ConvEmbeddingNet::train(&domain, &cfg, &mut rng);
    }

    #[test]
    #[should_panic(expected = "background needs")]
    fn too_few_domain_classes_panics() {
        let mut rng = Rng64::new(3);
        let domain = FewShotDomain::generate(5, 16, &mut rng);
        EmbeddingNet::train(&domain, &quick_cfg(), &mut rng);
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(EmbeddingConfig::builder().build().unwrap(), EmbeddingConfig::default());
    }

    #[test]
    fn builder_rejects_one_background_class() {
        let err = EmbeddingConfig::builder().background_classes(1).build().unwrap_err();
        assert!(err.to_string().contains("background_classes"), "{err}");
    }

    #[test]
    fn builder_rejects_zero_hidden_width() {
        assert!(EmbeddingConfig::builder().hidden(vec![64, 0]).build().is_err());
    }

    #[test]
    fn builder_rejects_degenerate_schedule() {
        assert!(EmbeddingConfig::builder().epochs(0).build().is_err());
        assert!(EmbeddingConfig::builder().learning_rate(0.0).build().is_err());
    }
}
