//! Memory-augmented neural networks — the models of paper Sec. III–IV.
//!
//! MANNs pair a controller network with an external *differentiable
//! memory* addressed by content. This crate implements the model side of
//! the paper's MANN discussion; the hardware sides live in `enw-xmann`
//! (crossbar acceleration) and `enw-cam` (TCAM acceleration), both of
//! which consume the functional kernels defined here.
//!
//! # Modules
//!
//! * [`memory`] — the soft-read/soft-write attentional memory and the
//!   similarity metrics (cosine vs. the CAM-friendly L1/L2/L∞ family).
//! * [`ntm`] — Neural-Turing-Machine addressing (content + interpolation +
//!   shift + sharpen).
//! * [`tasks`] — algorithmic memory tasks (NTM copy, content-addressed
//!   graph storage and traversal).
//! * [`kv_memory`] — the key–value lifelong memory module with age-based
//!   replacement used by one-shot learners.
//! * [`embedding`] — background-trained feature embeddings (the CNN stand-
//!   in that generates memory keys).
//! * [`lsh`] — random-hyperplane locality-sensitive hashing to binary
//!   signatures.
//! * [`encoding`] — binary-reflected Gray-code range encodings and ternary
//!   words (the RENE machinery).
//! * [`fewshot`] — the N-way K-shot evaluation harness comparing exact,
//!   quantized, range-encoded and LSH searches.
//!
//! # Example: one-shot learning with a key–value memory
//!
//! ```
//! use enw_mann::kv_memory::KeyValueMemory;
//! use enw_mann::memory::Similarity;
//!
//! let mut mem = KeyValueMemory::new(16, 4, Similarity::Cosine);
//! mem.update(&[1.0, 0.0, 0.0, 0.0], 0); // one example of class 0
//! mem.update(&[0.0, 1.0, 0.0, 0.0], 1); // one example of class 1
//! let hit = mem.retrieve(&[0.9, 0.2, 0.0, 0.0]).expect("non-empty");
//! assert_eq!(hit.value, 0);
//! ```

pub mod embedding;
pub mod encoding;
pub mod error;
pub mod fewshot;
pub mod kv_memory;
pub mod lsh;
pub mod memory;
pub mod ntm;
pub mod tasks;

pub use embedding::{
    ConvEmbeddingNet, Embedder, EmbeddingConfig, EmbeddingConfigBuilder, EmbeddingNet,
};
pub use error::MannError;
pub use fewshot::{FewShotOutcome, SearchMethod};
pub use kv_memory::KeyValueMemory;
pub use memory::{DifferentiableMemory, Similarity};
