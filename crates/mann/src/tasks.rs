//! Algorithmic memory tasks: the workloads the paper credits MANNs with
//! (Sec. I/III: NTMs/DNCs "can learn to construct complex data
//! structures such as graphs and decision trees (e.g., navigating the
//! London underground)" and "answer questions related to data
//! structures").
//!
//! These tasks exercise the differentiable-memory machinery end to end
//! with *hand-wired* controllers (the algorithmic policies a trained
//! controller converges to), which makes them deterministic workload
//! generators for the architectural simulators and executable proof that
//! the addressing primitives compose:
//!
//! * [`copy`] — the canonical NTM copy task: write a sequence with
//!   location-based addressing, rewind, read it back.
//! * [`GraphMemory`] — a graph stored as edge records in content-
//!   addressable memory, traversed by key-substitution queries (the
//!   mechanism behind the underground-navigation demonstrations).

use crate::memory::{DifferentiableMemory, Similarity};
use crate::ntm::{Head, HeadParams};
use enw_numerics::rng::Rng64;
use enw_numerics::vector::{self, normalize_l2};

/// Runs the NTM copy task: stores `sequence` into a fresh memory through
/// a write head that advances by location shift, then reads it back with
/// an independent read head. Returns the recalled sequence.
///
/// # Panics
///
/// Panics if the sequence is empty, items have unequal widths, or the
/// sequence is longer than `slots`.
pub fn copy(sequence: &[Vec<f32>], slots: usize) -> Vec<Vec<f32>> {
    assert!(!sequence.is_empty(), "empty sequence");
    let dim = sequence[0].len();
    assert!(sequence.iter().all(|s| s.len() == dim), "items must have equal widths");
    assert!(sequence.len() <= slots, "sequence exceeds memory capacity");
    let mut memory = DifferentiableMemory::new(slots, dim);
    let erase_all = vec![1.0f32; dim];

    // Write phase: location-based addressing, advancing one slot per item
    // (gate = 0 ignores content; shift kernel [0,0,1] moves focus +1).
    let mut write_head = Head::new(slots, Similarity::Cosine);
    write_head.focus_on(0);
    let advance = HeadParams {
        key: vec![0.0; dim],
        beta: 1.0,
        gate: 0.0,
        shift: vec![0.0, 0.0, 1.0],
        sharpen: 1.0,
    };
    for (i, item) in sequence.iter().enumerate() {
        memory.soft_write(write_head.focus(), &erase_all, item);
        if i + 1 < sequence.len() {
            write_head.address(&memory, &advance);
        }
    }

    // Read phase: an independent head replays the same trajectory.
    let mut read_head = Head::new(slots, Similarity::Cosine);
    read_head.focus_on(0);
    let mut recalled = Vec::with_capacity(sequence.len());
    for i in 0..sequence.len() {
        recalled.push(memory.soft_read(read_head.focus()));
        if i + 1 < sequence.len() {
            read_head.address(&memory, &advance);
        }
    }
    recalled
}

/// A directed graph stored as edge records `[src_key | dst_key]` in a
/// content-addressable memory.
///
/// Neighbour queries present `[src_key | 0]`: the dot-product similarity
/// scores only the source half, so every out-edge of `src` lights up;
/// reading the best match and decoding its destination half yields a
/// neighbour. Iterating with already-found edges masked enumerates the
/// rest — a pure content-addressing traversal, no pointers.
///
/// # Example
///
/// ```
/// use enw_mann::tasks::GraphMemory;
/// use enw_numerics::rng::Rng64;
///
/// let mut rng = Rng64::new(0);
/// let mut g = GraphMemory::new(4, 16, 8, &mut rng);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.neighbors(0, 1), vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphMemory {
    node_keys: Vec<Vec<f32>>,
    memory: DifferentiableMemory,
    edges: usize,
    key_dim: usize,
}

impl GraphMemory {
    /// Creates storage for a graph of `nodes` vertices and up to
    /// `edge_capacity` edges, with `key_dim`-wide node keys.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(nodes: usize, edge_capacity: usize, key_dim: usize, rng: &mut Rng64) -> Self {
        assert!(nodes > 0 && edge_capacity > 0 && key_dim > 0, "degenerate graph");
        let node_keys = (0..nodes)
            .map(|_| {
                let mut k: Vec<f32> = (0..key_dim).map(|_| rng.normal() as f32).collect();
                normalize_l2(&mut k);
                k
            })
            .collect();
        GraphMemory {
            node_keys,
            memory: DifferentiableMemory::new(edge_capacity, 2 * key_dim),
            edges: 0,
            key_dim,
        }
    }

    /// Number of vertices.
    pub fn nodes(&self) -> usize {
        self.node_keys.len()
    }

    /// Number of stored edges.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Stores the directed edge `src → dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the edge capacity is
    /// exhausted.
    pub fn add_edge(&mut self, src: usize, dst: usize) {
        assert!(src < self.nodes() && dst < self.nodes(), "endpoint out of range");
        assert!(self.edges < self.memory.slots(), "edge capacity exhausted");
        let mut record = self.node_keys[src].clone();
        record.extend_from_slice(&self.node_keys[dst]);
        self.memory.write_slot(self.edges, &record);
        self.edges += 1;
    }

    fn decode_node(&self, key: &[f32]) -> usize {
        let mut best = 0;
        let mut best_score = f32::NEG_INFINITY;
        for (i, k) in self.node_keys.iter().enumerate() {
            let s = vector::cosine_similarity(key, k);
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        best
    }

    /// Returns up to `k` out-neighbours of `src`, found purely by
    /// content-addressed search over the edge records.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn neighbors(&self, src: usize, k: usize) -> Vec<usize> {
        assert!(src < self.nodes(), "node out of range");
        let mut query = self.node_keys[src].clone();
        query.extend(std::iter::repeat_n(0.0f32, self.key_dim));
        let mut scores: Vec<(f32, usize)> = (0..self.edges)
            .map(|slot| (Similarity::Dot.score(&query, self.memory.slot(slot)), slot))
            .collect();
        scores.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut out = Vec::new();
        for &(score, slot) in &scores {
            if out.len() >= k || score < 0.5 {
                break; // below 0.5 the source half no longer matches
            }
            let record = self.memory.slot(slot);
            out.push(self.decode_node(&record[self.key_dim..]));
        }
        out
    }

    /// Follows a path from `start` by repeatedly taking the first
    /// content-addressed neighbour, for `steps` hops (the underground-
    /// navigation pattern). Stops early at a dead end.
    pub fn walk(&self, start: usize, steps: usize) -> Vec<usize> {
        let mut path = vec![start];
        let mut cur = start;
        for _ in 0..steps {
            let next = self.neighbors(cur, 1);
            match next.first() {
                Some(&n) => {
                    path.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_recalls_sequence_exactly() {
        let seq: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0, 0.5],
            vec![-0.5, 0.25, 0.0],
            vec![0.0, -1.0, 1.0],
            vec![0.75, 0.75, -0.75],
        ];
        let out = copy(&seq, 8);
        assert_eq!(out.len(), seq.len());
        for (a, b) in out.iter().zip(&seq) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn copy_at_full_capacity() {
        let seq: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32, -(i as f32)]).collect();
        let out = copy(&seq, 6);
        for (a, b) in out.iter().zip(&seq) {
            assert!((a[0] - b[0]).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds memory capacity")]
    fn copy_overflow_panics() {
        copy(&[vec![1.0], vec![2.0]], 1);
    }

    fn line_graph(rng: &mut Rng64) -> GraphMemory {
        // 0 → 1 → 2 → 3 → 4
        let mut g = GraphMemory::new(5, 16, 16, rng);
        for i in 0..4 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn neighbors_of_line_graph() {
        let mut rng = Rng64::new(1);
        let g = line_graph(&mut rng);
        for i in 0..4 {
            assert_eq!(g.neighbors(i, 2), vec![i + 1], "node {i}");
        }
        assert!(g.neighbors(4, 2).is_empty(), "sink has no out-edges");
    }

    #[test]
    fn walk_navigates_the_line() {
        let mut rng = Rng64::new(2);
        let g = line_graph(&mut rng);
        assert_eq!(g.walk(0, 4), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.walk(2, 10), vec![2, 3, 4], "walk must stop at the sink");
    }

    #[test]
    fn branching_node_returns_all_neighbors() {
        let mut rng = Rng64::new(3);
        let mut g = GraphMemory::new(6, 16, 24, &mut rng);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(0, 5);
        g.add_edge(1, 4);
        let mut n = g.neighbors(0, 5);
        n.sort_unstable();
        assert_eq!(n, vec![2, 3, 5]);
    }

    #[test]
    fn underground_style_route() {
        // A small "tube map": two lines crossing at an interchange.
        let mut rng = Rng64::new(4);
        let mut g = GraphMemory::new(7, 32, 24, &mut rng);
        // Line A: 0-1-2-3, Line B: 4-1-5-6 (interchange at 1).
        for (a, b) in [(0, 1), (1, 2), (2, 3), (4, 1), (1, 5), (5, 6)] {
            g.add_edge(a, b);
        }
        let mut from_interchange = g.neighbors(1, 4);
        from_interchange.sort_unstable();
        assert_eq!(from_interchange, vec![2, 5], "interchange must expose both lines");
        // A route query: can we reach 6 from 4 by content addressing?
        let mut cur = 4;
        let mut visited = vec![4];
        for _ in 0..4 {
            let opts = g.neighbors(cur, 4);
            if opts.is_empty() {
                break;
            }
            // Greedy: prefer the unvisited neighbour with the largest id
            // (toward line B's end).
            let next = opts.iter().copied().filter(|n| !visited.contains(n)).max();
            match next {
                Some(n) => {
                    visited.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        assert!(visited.contains(&6), "route 4→…→6 not found: {visited:?}");
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn edge_overflow_panics() {
        let mut rng = Rng64::new(5);
        let mut g = GraphMemory::new(3, 1, 8, &mut rng);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
    }
}
