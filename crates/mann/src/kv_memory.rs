//! Key–value lifelong memory module (refs. \[6\]\[52\], used by the
//! TCAM-MANN studies \[48\]).
//!
//! The module stores `(key, value, age)` triples. Queries retrieve the
//! most similar key; the memory update rule either *merges* the query into
//! a correct matching key (moving it toward the class centroid) or *writes*
//! the query into the oldest slot when the retrieval was wrong — which is
//! what lets the network remember rare events after a single exposure.

use crate::memory::Similarity;
use enw_numerics::vector::normalize_l2;

/// One retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retrieval {
    /// Index of the best-matching slot.
    pub slot: usize,
    /// The stored value (class label) of that slot.
    pub value: usize,
    /// The similarity score of the match.
    pub score: f32,
}

/// A fixed-capacity key–value memory with age-based replacement.
///
/// Keys are L2-normalized on write, matching the cosine-similarity
/// convention of the source work.
///
/// # Example
///
/// ```
/// use enw_mann::kv_memory::KeyValueMemory;
/// use enw_mann::memory::Similarity;
///
/// let mut mem = KeyValueMemory::new(8, 4, Similarity::Cosine);
/// mem.update(&[1.0, 0.0, 0.0, 0.0], 3);
/// let hit = mem.retrieve(&[0.9, 0.1, 0.0, 0.0]).expect("memory not empty");
/// assert_eq!(hit.value, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KeyValueMemory {
    dim: usize,
    similarity: Similarity,
    keys: Vec<Vec<f32>>,
    values: Vec<usize>,
    ages: Vec<u64>,
    used: usize,
    clock: u64,
}

impl KeyValueMemory {
    /// An empty memory with `capacity` slots of `dim`-wide keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `dim` is zero.
    pub fn new(capacity: usize, dim: usize, similarity: Similarity) -> Self {
        assert!(capacity > 0 && dim > 0, "degenerate memory");
        KeyValueMemory {
            dim,
            similarity,
            keys: vec![vec![0.0; dim]; capacity],
            values: vec![0; capacity],
            ages: vec![0; capacity],
            used: 0,
            clock: 0,
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Number of slots written so far (saturates at capacity).
    pub fn len(&self) -> usize {
        self.used
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Key width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The stored keys currently in use (first `len()` slots).
    pub fn keys(&self) -> &[Vec<f32>] {
        &self.keys[..self.used]
    }

    /// The stored values currently in use.
    pub fn values(&self) -> &[usize] {
        &self.values[..self.used]
    }

    /// Retrieves the best match for `query`, or `None` if the memory is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches.
    pub fn retrieve(&self, query: &[f32]) -> Option<Retrieval> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        if self.used == 0 {
            return None;
        }
        let mut q = query.to_vec();
        normalize_l2(&mut q);
        let mut best = Retrieval { slot: 0, value: self.values[0], score: f32::NEG_INFINITY };
        for s in 0..self.used {
            let score = self.similarity.score(&q, &self.keys[s]);
            if score > best.score {
                best = Retrieval { slot: s, value: self.values[s], score };
            }
        }
        Some(best)
    }

    /// Lifelong-memory update rule for a labeled example `(query, value)`:
    ///
    /// * if the best match already stores `value`, merge the query into the
    ///   key (normalized average) and reset the slot's age;
    /// * otherwise write `(query, value)` into the oldest (or first free)
    ///   slot.
    ///
    /// Returns the slot that was written or merged.
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches.
    pub fn update(&mut self, query: &[f32], value: usize) -> usize {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        self.clock += 1;
        let mut q = query.to_vec();
        normalize_l2(&mut q);
        if let Some(hit) = self.retrieve(&q) {
            if hit.value == value {
                // Merge: move key toward the class centroid.
                let key = &mut self.keys[hit.slot];
                for (k, &qi) in key.iter_mut().zip(&q) {
                    *k += qi;
                }
                normalize_l2(key);
                self.ages[hit.slot] = self.clock;
                return hit.slot;
            }
        }
        // Wrong (or no) retrieval: claim a free slot, else evict the oldest.
        let slot = if self.used < self.capacity() {
            let s = self.used;
            self.used += 1;
            s
        } else {
            let mut oldest = 0;
            for s in 1..self.used {
                if self.ages[s] < self.ages[oldest] {
                    oldest = s;
                }
            }
            oldest
        };
        self.keys[slot] = q;
        self.values[slot] = value;
        self.ages[slot] = self.clock;
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn empty_memory_retrieves_nothing() {
        let mem = KeyValueMemory::new(4, 3, Similarity::Cosine);
        assert!(mem.retrieve(&[1.0, 0.0, 0.0]).is_none());
    }

    #[test]
    fn single_shot_store_and_retrieve() {
        let mut mem = KeyValueMemory::new(4, 3, Similarity::Cosine);
        mem.update(&unit(3, 1), 7);
        let hit = mem.retrieve(&[0.1, 0.95, 0.0]).expect("non-empty");
        assert_eq!(hit.value, 7);
    }

    #[test]
    fn correct_retrieval_merges_instead_of_writing() {
        let mut mem = KeyValueMemory::new(8, 2, Similarity::Cosine);
        mem.update(&[1.0, 0.0], 1);
        mem.update(&[0.9, 0.1], 1); // same class, similar key → merge
        assert_eq!(mem.len(), 1);
        // Merged key sits between the two inputs.
        let k = &mem.keys()[0];
        assert!(k[0] > 0.9 && k[1] > 0.0);
    }

    #[test]
    fn wrong_retrieval_writes_new_slot() {
        let mut mem = KeyValueMemory::new(8, 2, Similarity::Cosine);
        mem.update(&[1.0, 0.0], 1);
        mem.update(&[0.95, 0.05], 2); // retrieves class 1 but is class 2
        assert_eq!(mem.len(), 2);
    }

    #[test]
    fn eviction_replaces_oldest() {
        let mut mem = KeyValueMemory::new(2, 4, Similarity::Cosine);
        mem.update(&unit(4, 0), 0);
        mem.update(&unit(4, 1), 1);
        assert_eq!(mem.len(), 2);
        // A third distinct class evicts slot 0 (the oldest).
        mem.update(&unit(4, 2), 2);
        assert_eq!(mem.len(), 2);
        let hit = mem.retrieve(&unit(4, 2)).expect("non-empty");
        assert_eq!(hit.value, 2);
        // Class 0 is gone.
        let hit0 = mem.retrieve(&unit(4, 0)).expect("non-empty");
        assert_ne!(hit0.value, 0);
    }

    #[test]
    fn keys_are_normalized() {
        let mut mem = KeyValueMemory::new(2, 2, Similarity::Cosine);
        mem.update(&[3.0, 4.0], 9);
        let n = enw_numerics::vector::norm_l2(&mem.keys()[0]);
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn merge_resets_age_and_protects_from_eviction() {
        let mut mem = KeyValueMemory::new(2, 4, Similarity::Cosine);
        mem.update(&unit(4, 0), 0);
        mem.update(&unit(4, 1), 1);
        // Refresh class 0 via merge; class 1 becomes the oldest.
        mem.update(&unit(4, 0), 0);
        mem.update(&unit(4, 2), 2); // evicts class 1
        assert_eq!(mem.retrieve(&unit(4, 0)).expect("non-empty").value, 0);
    }
}
