//! Neural-Turing-Machine addressing (paper Fig. 3, refs. \[3\]\[8\]).
//!
//! An NTM head refines a content-based attention distribution through
//! interpolation with the previous focus, a circular convolutional shift,
//! and sharpening. The module implements the full addressing pipeline over
//! a [`DifferentiableMemory`]; the X-MANN architectural simulator uses it
//! as a workload generator with realistic attention shapes.

use crate::memory::{DifferentiableMemory, Similarity};
use enw_numerics::vector::softmax;

/// Head parameters for one addressing step (what the controller network
/// would emit).
#[derive(Debug, Clone, PartialEq)]
pub struct HeadParams {
    /// Content key.
    pub key: Vec<f32>,
    /// Key strength (softmax inverse temperature), > 0.
    pub beta: f32,
    /// Interpolation gate in `[0, 1]`: 1 = pure content addressing,
    /// 0 = keep previous focus.
    pub gate: f32,
    /// Circular shift distribution (odd length, centered; e.g. `[p(-1),
    /// p(0), p(+1)]`). Must sum to ~1.
    pub shift: Vec<f32>,
    /// Sharpening exponent ≥ 1.
    pub sharpen: f32,
}

impl HeadParams {
    /// Pure content addressing with the given key and strength.
    pub fn content_only(key: Vec<f32>, beta: f32) -> Self {
        HeadParams { key, beta, gate: 1.0, shift: vec![0.0, 1.0, 0.0], sharpen: 1.0 }
    }
}

/// One read/write head with persistent focus state.
#[derive(Debug, Clone, PartialEq)]
pub struct Head {
    focus: Vec<f32>,
    similarity: Similarity,
}

impl Head {
    /// A head over `slots` memory locations, initially focused uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize, similarity: Similarity) -> Self {
        assert!(slots > 0, "head needs at least one slot");
        Head { focus: vec![1.0 / slots as f32; slots], similarity }
    }

    /// The current attention distribution.
    pub fn focus(&self) -> &[f32] {
        &self.focus
    }

    /// Hard-sets the focus to one slot (used by algorithmic tasks that
    /// begin from a known location).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn focus_on(&mut self, slot: usize) {
        assert!(slot < self.focus.len(), "slot out of range");
        for f in &mut self.focus {
            *f = 0.0;
        }
        self.focus[slot] = 1.0;
    }

    /// Runs the full NTM addressing pipeline and returns the new focus.
    ///
    /// # Panics
    ///
    /// Panics if the key width mismatches the memory or the shift kernel
    /// has even length.
    pub fn address(&mut self, memory: &DifferentiableMemory, params: &HeadParams) -> Vec<f32> {
        assert_eq!(params.shift.len() % 2, 1, "shift kernel must have odd length");
        // 1. Content addressing.
        let wc = memory.content_address(&params.key, self.similarity, params.beta);
        // 2. Interpolation with previous focus.
        let g = params.gate.clamp(0.0, 1.0);
        let wg: Vec<f32> = wc.iter().zip(&self.focus).map(|(c, p)| g * c + (1.0 - g) * p).collect();
        // 3. Circular convolutional shift.
        let n = wg.len();
        let half = params.shift.len() / 2;
        let mut ws = vec![0.0f32; n];
        for (i, out) in ws.iter_mut().enumerate() {
            for (k, &s) in params.shift.iter().enumerate() {
                let offset = k as isize - half as isize;
                let src = (i as isize - offset).rem_euclid(n as isize) as usize;
                *out += wg[src] * s;
            }
        }
        // 4. Sharpening.
        let gamma = params.sharpen.max(1.0);
        let mut wsh: Vec<f32> = ws.iter().map(|w| w.max(0.0).powf(gamma)).collect();
        let total: f32 = wsh.iter().sum();
        if total > 1e-12 {
            for w in &mut wsh {
                *w /= total;
            }
        } else {
            wsh = softmax(&ws, 1.0);
        }
        self.focus = wsh.clone();
        wsh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> DifferentiableMemory {
        let mut m = DifferentiableMemory::new(4, 2);
        m.write_slot(0, &[1.0, 0.0]);
        m.write_slot(1, &[0.0, 1.0]);
        m.write_slot(2, &[-1.0, 0.0]);
        m.write_slot(3, &[0.0, -1.0]);
        m
    }

    #[test]
    fn content_addressing_focuses_on_match() {
        let m = mem();
        let mut h = Head::new(4, Similarity::Cosine);
        let w = h.address(&m, &HeadParams::content_only(vec![0.0, 1.0], 20.0));
        assert!(w[1] > 0.9, "{w:?}");
    }

    #[test]
    fn focus_is_distribution() {
        let m = mem();
        let mut h = Head::new(4, Similarity::Cosine);
        let w = h.address(
            &m,
            &HeadParams {
                key: vec![1.0, 1.0],
                beta: 3.0,
                gate: 0.7,
                shift: vec![0.1, 0.8, 0.1],
                sharpen: 2.0,
            },
        );
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gate_zero_keeps_previous_focus() {
        let m = mem();
        let mut h = Head::new(4, Similarity::Cosine);
        h.address(&m, &HeadParams::content_only(vec![1.0, 0.0], 20.0));
        let before = h.focus().to_vec();
        let w = h.address(
            &m,
            &HeadParams {
                key: vec![0.0, 1.0],
                beta: 20.0,
                gate: 0.0,
                shift: vec![0.0, 1.0, 0.0],
                sharpen: 1.0,
            },
        );
        for (a, b) in w.iter().zip(&before) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn shift_rotates_focus() {
        let m = mem();
        let mut h = Head::new(4, Similarity::Cosine);
        h.address(&m, &HeadParams::content_only(vec![1.0, 0.0], 50.0));
        assert!(h.focus()[0] > 0.9);
        // Pure +1 shift with gate 0: focus moves from slot 0 to slot 1.
        let w = h.address(
            &m,
            &HeadParams {
                key: vec![1.0, 0.0],
                beta: 1.0,
                gate: 0.0,
                shift: vec![0.0, 0.0, 1.0],
                sharpen: 1.0,
            },
        );
        assert!(w[1] > 0.9, "{w:?}");
    }

    #[test]
    fn sharpening_concentrates() {
        let m = mem();
        let mut soft_head = Head::new(4, Similarity::Cosine);
        let mut sharp_head = Head::new(4, Similarity::Cosine);
        let base = HeadParams {
            key: vec![1.0, 0.3],
            beta: 2.0,
            gate: 1.0,
            shift: vec![0.0, 1.0, 0.0],
            sharpen: 1.0,
        };
        let ws = soft_head.address(&m, &base);
        let wsh = sharp_head.address(&m, &HeadParams { sharpen: 4.0, ..base });
        let max_soft = ws.iter().cloned().fold(0.0f32, f32::max);
        let max_sharp = wsh.iter().cloned().fold(0.0f32, f32::max);
        assert!(max_sharp > max_soft);
    }
}
