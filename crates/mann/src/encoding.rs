//! Binary-reflected Gray code (BRGC) range encodings and ternary words —
//! the RENE approach of paper Sec. IV-B1 (refs. \[53\]\[54\]).
//!
//! A TCAM matches a query against stored words where each stored bit is
//! `0`, `1` or *don't care*. RENE encodes fixed-point feature levels in
//! BRGC and expresses an interval `[lo, hi]` as a ternary pattern whose
//! specified bits are those constant across every code in the interval.
//! Growing the interval (an L∞ cube around the query) until the TCAM
//! reports a match yields a nearest-neighbour search using only parallel
//! ternary matches.

use enw_numerics::bits::BitVec;

/// Binary-reflected Gray code of `v`.
pub fn brgc(v: u32) -> u32 {
    v ^ (v >> 1)
}

/// Inverse BRGC.
pub fn from_brgc(g: u32) -> u32 {
    let mut out = g;
    let mut cur = g >> 1;
    while cur != 0 {
        out ^= cur;
        cur >>= 1;
    }
    out
}

/// A ternary word: `care` marks specified bit positions, `bits` holds
/// their values (don't-care positions have `care = 0`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TernaryWord {
    bits: BitVec,
    care: BitVec,
}

impl TernaryWord {
    /// A fully specified word (no don't-cares).
    pub fn exact(bits: BitVec) -> Self {
        let care = (0..bits.len()).map(|_| true).collect();
        TernaryWord { bits, care }
    }

    /// Builds a ternary word from bit values and a care mask.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length.
    pub fn new(bits: BitVec, care: BitVec) -> Self {
        assert_eq!(bits.len(), care.len(), "bits and care mask must align");
        TernaryWord { bits, care }
    }

    /// Word length in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` for a zero-length word.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of specified (non-don't-care) bits.
    pub fn care_count(&self) -> usize {
        self.care.count_ones()
    }

    /// Exact ternary match: every specified bit must agree.
    ///
    /// # Panics
    ///
    /// Panics if the stored word has a different length.
    pub fn matches(&self, stored: &BitVec) -> bool {
        assert_eq!(stored.len(), self.len(), "word length mismatch");
        self.matches_limbs(stored.limbs())
    }

    /// [`matches`](TernaryWord::matches) against a word given as packed
    /// limbs (as stored in a flat TCAM array). One XOR + AND per 64 bits:
    /// a don't-care position is masked off by the `care` limb, so only
    /// specified bits can produce a set difference bit.
    ///
    /// # Panics
    ///
    /// Panics if the limb count differs from this pattern's.
    // enw:hot
    pub fn matches_limbs(&self, stored: &[u64]) -> bool {
        let bits = self.bits.limbs();
        let care = self.care.limbs();
        assert_eq!(stored.len(), bits.len(), "word length mismatch");
        bits.iter().zip(care).zip(stored).all(|((b, c), s)| (b ^ s) & c == 0)
    }

    /// Hamming distance over the specified bits only (what a TCAM
    /// match-line discharge rate measures).
    ///
    /// # Panics
    ///
    /// Panics if the stored word has a different length.
    pub fn mismatches(&self, stored: &BitVec) -> usize {
        assert_eq!(stored.len(), self.len(), "word length mismatch");
        let bits = self.bits.limbs();
        let care = self.care.limbs();
        bits.iter()
            .zip(care)
            .zip(stored.limbs())
            .map(|((b, c), s)| ((b ^ s) & c).count_ones() as usize)
            .sum()
    }
}

/// Encodes one fixed-point level (in `0..levels`) as `bits_per_dim` BRGC
/// bits.
///
/// # Panics
///
/// Panics if `level` does not fit in `bits_per_dim` bits.
pub fn encode_level(level: u32, bits_per_dim: u32) -> BitVec {
    assert!(level < (1u64 << bits_per_dim) as u32, "level {level} exceeds {bits_per_dim} bits");
    let g = brgc(level);
    (0..bits_per_dim).map(|b| (g >> b) & 1 == 1).collect()
}

/// Encodes a multi-dimensional level vector by concatenating per-dimension
/// BRGC codes.
pub fn encode_levels(levels: &[u32], bits_per_dim: u32) -> BitVec {
    let mut all = Vec::with_capacity(levels.len() * bits_per_dim as usize);
    for &l in levels {
        all.extend(encode_level(l, bits_per_dim).iter());
    }
    BitVec::from_bools(&all)
}

/// Ternary pattern covering the interval `[lo, hi]` of levels in one
/// dimension: specified bits are those constant across all BRGC codes in
/// the interval. The cover is a superset of the interval (standard for
/// single-word range encodings); BRGC keeps the over-coverage small for
/// the unit-radius steps the KNN search uses.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi` does not fit in `bits_per_dim` bits.
pub fn range_pattern(lo: u32, hi: u32, bits_per_dim: u32) -> TernaryWord {
    assert!(lo <= hi, "invalid range");
    assert!(hi < (1u64 << bits_per_dim) as u32, "range exceeds bit width");
    let mut and_mask = u32::MAX;
    let mut or_mask = 0u32;
    for v in lo..=hi {
        let g = brgc(v);
        and_mask &= g;
        or_mask |= g;
    }
    // Bits where AND == OR are constant over the range.
    let constant = !(and_mask ^ or_mask);
    let bits: BitVec = (0..bits_per_dim).map(|b| (and_mask >> b) & 1 == 1).collect();
    let care: BitVec = (0..bits_per_dim).map(|b| (constant >> b) & 1 == 1).collect();
    TernaryWord::new(bits, care)
}

/// Ternary pattern for an L∞ cube of radius `r` around a level vector:
/// the concatenation of per-dimension `[vᵢ−r, vᵢ+r]` patterns (clamped to
/// the level range).
pub fn cube_pattern(levels: &[u32], radius: u32, bits_per_dim: u32) -> TernaryWord {
    let max_level = ((1u64 << bits_per_dim) - 1) as u32;
    let mut bits = Vec::new();
    let mut care = Vec::new();
    for &v in levels {
        let lo = v.saturating_sub(radius);
        let hi = (v + radius).min(max_level);
        let p = range_pattern(lo, hi, bits_per_dim);
        for i in 0..p.len() {
            bits.push(p.bits.get(i));
            care.push(p.care.get(i));
        }
    }
    TernaryWord::new(BitVec::from_bools(&bits), BitVec::from_bools(&care))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brgc_round_trip() {
        for v in 0..1024u32 {
            assert_eq!(from_brgc(brgc(v)), v);
        }
    }

    #[test]
    fn brgc_neighbours_differ_in_one_bit() {
        for v in 0..255u32 {
            let d = (brgc(v) ^ brgc(v + 1)).count_ones();
            assert_eq!(d, 1, "codes of {v} and {} differ in {d} bits", v + 1);
        }
    }

    #[test]
    fn exact_word_matches_only_itself() {
        let w = TernaryWord::exact(encode_level(5, 4));
        assert!(w.matches(&encode_level(5, 4)));
        assert!(!w.matches(&encode_level(6, 4)));
    }

    #[test]
    fn range_pattern_covers_entire_range() {
        for (lo, hi) in [(0u32, 3u32), (2, 5), (7, 7), (0, 15), (3, 12)] {
            let p = range_pattern(lo, hi, 4);
            for v in lo..=hi {
                assert!(p.matches(&encode_level(v, 4)), "[{lo},{hi}] missed {v}");
            }
        }
    }

    #[test]
    fn aligned_range_is_tight() {
        // Power-of-two aligned ranges are exactly representable.
        let p = range_pattern(0, 7, 4);
        for v in 0..16u32 {
            assert_eq!(p.matches(&encode_level(v, 4)), v <= 7, "level {v}");
        }
    }

    #[test]
    fn radius_zero_cube_is_exact() {
        let levels = [3u32, 9, 0];
        let p = cube_pattern(&levels, 0, 4);
        assert!(p.matches(&encode_levels(&levels, 4)));
        assert!(!p.matches(&encode_levels(&[3, 9, 1], 4)));
        assert_eq!(p.care_count(), 12);
    }

    #[test]
    fn cube_matches_everything_within_linf_radius() {
        let levels = [5u32, 10];
        let p = cube_pattern(&levels, 2, 4);
        for a in 3..=7u32 {
            for b in 8..=12u32 {
                assert!(p.matches(&encode_levels(&[a, b], 4)), "({a},{b})");
            }
        }
    }

    #[test]
    fn larger_radius_has_fewer_care_bits() {
        let levels = [8u32; 4];
        let tight = cube_pattern(&levels, 0, 4);
        let loose = cube_pattern(&levels, 3, 4);
        assert!(loose.care_count() < tight.care_count());
    }

    #[test]
    fn mismatches_counts_specified_disagreements() {
        let w = TernaryWord::exact(BitVec::from_bools(&[true, false, true]));
        let stored = BitVec::from_bools(&[true, true, false]);
        assert_eq!(w.mismatches(&stored), 2);
    }

    #[test]
    fn cube_clamps_at_level_boundaries() {
        let p = cube_pattern(&[0u32], 3, 4);
        assert!(p.matches(&encode_level(0, 4)));
        assert!(p.matches(&encode_level(3, 4)));
    }
}
