//! The GPU + DRAM baseline that X-MANN is compared against (paper
//! Sec. III-B).
//!
//! Every differentiable-memory kernel on a GPU must stream the entire
//! memory matrix out of DRAM: similarity scans read all `M × D` words,
//! soft reads do the same, and soft writes read *and* write them. The
//! baseline executes the same functional operations as [`crate::arch::Xmann`]
//! and charges the GPU cost model.

use crate::arch::OpResult;
use crate::cost::{Cost, GpuCostParams};
use enw_mann::memory::{DifferentiableMemory, Similarity};
use enw_numerics::vector::softmax;

/// A GPU implementation of the MANN differentiable memory.
///
/// # Example
///
/// ```
/// use enw_xmann::baseline::GpuMann;
/// use enw_xmann::cost::GpuCostParams;
///
/// let mut gpu = GpuMann::new(1024, 64, GpuCostParams::default());
/// let sim = gpu.similarity(&vec![0.1f32; 64]);
/// assert_eq!(sim.value.len(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct GpuMann {
    memory: DifferentiableMemory,
    params: GpuCostParams,
    total: Cost,
}

impl GpuMann {
    /// Builds a GPU-resident memory of `slots × dim`.
    pub fn new(slots: usize, dim: usize, params: GpuCostParams) -> Self {
        GpuMann { memory: DifferentiableMemory::new(slots, dim), params, total: Cost::zero() }
    }

    /// The stored memory.
    pub fn memory(&self) -> &DifferentiableMemory {
        &self.memory
    }

    /// Accumulated cost.
    pub fn total_cost(&self) -> Cost {
        self.total
    }

    /// Loads memory contents (uncharged initialization).
    pub fn load_memory(&mut self, rows: &[Vec<f32>]) {
        for (i, r) in rows.iter().enumerate() {
            self.memory.write_slot(i, r);
        }
    }

    fn footprint_bytes(&self) -> u64 {
        (self.memory.slots() * self.memory.dim() * 4) as u64
    }

    /// Cosine-similarity scan of the query against every row: reads the
    /// whole memory, ~4 FLOPs per element (multiply, two norm accumulations,
    /// and the normalization amortized).
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches.
    pub fn similarity(&mut self, query: &[f32]) -> OpResult<Vec<f32>> {
        let value = self.memory.similarities(query, Similarity::Cosine);
        let elems = (self.memory.slots() * self.memory.dim()) as u64;
        let cost = self.params.kernel(self.footprint_bytes(), 4 * elems);
        self.total += cost;
        OpResult { value, cost }
    }

    /// Content addressing: similarity scan + softmax kernel.
    pub fn content_address(&mut self, query: &[f32], beta: f32) -> OpResult<Vec<f32>> {
        let sim = self.similarity(query);
        let value = softmax(&sim.value, beta);
        let soft =
            self.params.kernel((self.memory.slots() * 4) as u64, 3 * self.memory.slots() as u64);
        self.total += soft;
        OpResult { value, cost: sim.cost + soft }
    }

    /// Soft read: weighted sum over all rows (full memory traffic, 2 FLOPs
    /// per element).
    pub fn soft_read(&mut self, weights: &[f32]) -> OpResult<Vec<f32>> {
        let value = self.memory.soft_read(weights);
        let elems = (self.memory.slots() * self.memory.dim()) as u64;
        let cost = self.params.kernel(self.footprint_bytes(), 2 * elems);
        self.total += cost;
        OpResult { value, cost }
    }

    /// Soft write: reads and writes every element (double traffic,
    /// 4 FLOPs per element for erase-and-add).
    pub fn soft_write(&mut self, weights: &[f32], erase: &[f32], add: &[f32]) -> OpResult<()> {
        self.memory.soft_write(weights, erase, add);
        let elems = (self.memory.slots() * self.memory.dim()) as u64;
        let cost = self.params.kernel(2 * self.footprint_bytes(), 4 * elems);
        self.total += cost;
        OpResult { value: (), cost }
    }

    /// Hard slot write (still a kernel launch + one row of traffic).
    pub fn write_slot(&mut self, slot: usize, word: &[f32]) -> Cost {
        self.memory.write_slot(slot, word);
        let cost = self.params.kernel((word.len() * 4) as u64, 0);
        self.total += cost;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuMann {
        let mut g = GpuMann::new(4, 3, GpuCostParams::default());
        g.load_memory(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.5, 0.5, 0.0],
        ]);
        g
    }

    #[test]
    fn functional_results_match_reference_memory() {
        let mut g = gpu();
        let w = [0.5f32, 0.5, 0.0, 0.0];
        assert_eq!(g.soft_read(&w).value, g.memory().soft_read(&w));
    }

    #[test]
    fn similarity_uses_cosine() {
        let mut g = gpu();
        let s = g.similarity(&[1.0, 0.0, 0.0]);
        assert!((s.value[0] - 1.0).abs() < 1e-5);
        assert!(s.value[1].abs() < 1e-5);
    }

    #[test]
    fn every_op_pays_kernel_launch() {
        let mut g = gpu();
        let c = g.soft_read(&[0.25; 4]).cost;
        assert!(c.latency_ns >= GpuCostParams::default().kernel_launch_ns);
    }

    #[test]
    fn soft_write_costs_double_traffic() {
        let mut g = gpu();
        let r = g.soft_read(&[0.25; 4]).cost;
        let w = g.soft_write(&[1.0, 0.0, 0.0, 0.0], &[0.0; 3], &[0.0; 3]).cost;
        assert!(w.energy_pj > r.energy_pj * 1.5);
    }

    #[test]
    fn cost_grows_linearly_with_memory() {
        let mut small = GpuMann::new(128, 64, GpuCostParams::default());
        let mut large = GpuMann::new(1280, 64, GpuCostParams::default());
        let es = small.similarity(&vec![0.1; 64]).cost.energy_pj;
        let el = large.similarity(&vec![0.1; 64]).cost.energy_pj;
        assert!((el / es - 10.0).abs() < 0.5);
    }
}
