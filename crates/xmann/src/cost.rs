//! Energy/latency accounting primitives and the technology constants of
//! the X-MANN cost model.
//!
//! The paper reports X-MANN's gains as ratios over a GPU baseline
//! (Sec. III-B). Ratios of this kind are products of *event counts* (how
//! many MACs, conversions, bytes moved) and *per-event costs*. The event
//! counts are exact in this simulator; the per-event costs below are
//! representative published numbers for ~32 nm-class digital logic, HBM-era
//! GPU memory systems and analog crossbar peripheries. DESIGN.md records
//! this substitution.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// An (energy, latency) pair. Energy in picojoules, latency in
/// nanoseconds.
///
/// Addition accumulates energy and *serial* latency; use
/// [`Cost::parallel_max`] to combine concurrent phases.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Energy in picojoules.
    pub energy_pj: f64,
    /// Latency in nanoseconds.
    pub latency_ns: f64,
}

impl Cost {
    /// Zero cost.
    pub fn zero() -> Self {
        Cost::default()
    }

    /// Creates a cost from energy (pJ) and latency (ns).
    pub fn new(energy_pj: f64, latency_ns: f64) -> Self {
        Cost { energy_pj, latency_ns }
    }

    /// Combines two *concurrent* phases: energies add, latency is the
    /// maximum.
    pub fn parallel_max(self, other: Cost) -> Cost {
        Cost {
            energy_pj: self.energy_pj + other.energy_pj,
            latency_ns: self.latency_ns.max(other.latency_ns),
        }
    }

    /// Scales both components (e.g. repeat an op `n` times serially).
    pub fn repeat(self, n: u64) -> Cost {
        Cost { energy_pj: self.energy_pj * n as f64, latency_ns: self.latency_ns * n as f64 }
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            energy_pj: self.energy_pj + rhs.energy_pj,
            latency_ns: self.latency_ns + rhs.latency_ns,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::zero(), |a, b| a + b)
    }
}

/// Per-event costs of the X-MANN datapath components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XmannCostParams {
    /// Energy of one analog MAC at a crosspoint (pJ).
    pub xbar_mac_pj: f64,
    /// Latency of one crossbar evaluation phase (ns) — integration time,
    /// independent of array size (the O(1) property).
    pub xbar_op_ns: f64,
    /// Energy per DAC conversion (pJ).
    pub dac_pj: f64,
    /// Energy per ADC conversion (pJ).
    pub adc_pj: f64,
    /// ADC conversion time (ns).
    pub adc_ns: f64,
    /// ADCs shared per tile (outputs are converted in
    /// `ceil(lines/adc_per_tile)` serial rounds).
    pub adcs_per_tile: usize,
    /// Energy per SFU scalar operation (pJ).
    pub sfu_op_pj: f64,
    /// SFU scalar operations per ns (vector lanes).
    pub sfu_ops_per_ns: f64,
    /// Energy per byte moved on the shared intra-subarray bus (pJ).
    pub bus_byte_pj: f64,
    /// Bus bandwidth (bytes per ns).
    pub bus_bytes_per_ns: f64,
    /// Energy per scalar addition in the global reduce unit (pJ).
    pub reduce_add_pj: f64,
    /// Latency of one reduce stage (ns); stages are logarithmic in the
    /// number of tiles reduced.
    pub reduce_stage_ns: f64,
    /// Energy per device programming pulse during soft writes (pJ).
    pub write_pulse_pj: f64,
    /// Latency of one parallel update phase (ns).
    pub update_op_ns: f64,
}

impl Default for XmannCostParams {
    fn default() -> Self {
        XmannCostParams {
            xbar_mac_pj: 0.01,
            xbar_op_ns: 100.0,
            dac_pj: 0.2,
            adc_pj: 5.0,
            adc_ns: 10.0,
            adcs_per_tile: 16,
            sfu_op_pj: 1.0,
            sfu_ops_per_ns: 8.0,
            bus_byte_pj: 1.0,
            bus_bytes_per_ns: 32.0,
            reduce_add_pj: 0.5,
            reduce_stage_ns: 2.0,
            write_pulse_pj: 1.0,
            update_op_ns: 100.0,
        }
    }
}

/// The GPU + DRAM baseline cost model.
///
/// MANN differentiable-memory kernels on a GPU stream the whole memory
/// matrix from DRAM for every soft read/write and similarity scan; the
/// model charges DRAM traffic, FP32 arithmetic, and a fixed kernel-launch
/// overhead per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCostParams {
    /// DRAM access energy per byte (pJ/B).
    pub dram_byte_pj: f64,
    /// DRAM bandwidth (bytes per ns). 900 GB/s ≈ 0.9 B/ns × 10³.
    pub dram_bytes_per_ns: f64,
    /// Energy per FP32 operation including SM overheads (pJ).
    pub flop_pj: f64,
    /// Peak arithmetic throughput (FLOP per ns).
    pub flops_per_ns: f64,
    /// Kernel-launch overhead per memory operation (ns).
    pub kernel_launch_ns: f64,
}

impl Default for GpuCostParams {
    fn default() -> Self {
        GpuCostParams {
            dram_byte_pj: 10.0,
            dram_bytes_per_ns: 900.0,
            flop_pj: 0.5,
            flops_per_ns: 10_000.0,
            kernel_launch_ns: 5_000.0,
        }
    }
}

impl GpuCostParams {
    /// Cost of one kernel touching `bytes` of DRAM and executing `flops`
    /// FP32 operations (memory and compute overlap; launch does not).
    pub fn kernel(&self, bytes: u64, flops: u64) -> Cost {
        let mem =
            Cost::new(bytes as f64 * self.dram_byte_pj, bytes as f64 / self.dram_bytes_per_ns);
        let compute = Cost::new(flops as f64 * self.flop_pj, flops as f64 / self.flops_per_ns);
        mem.parallel_max(compute) + Cost::new(0.0, self.kernel_launch_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_serially() {
        let a = Cost::new(10.0, 5.0);
        let b = Cost::new(1.0, 2.0);
        assert_eq!(a + b, Cost::new(11.0, 7.0));
    }

    #[test]
    fn parallel_max_takes_slowest() {
        let a = Cost::new(10.0, 5.0);
        let b = Cost::new(1.0, 20.0);
        assert_eq!(a.parallel_max(b), Cost::new(11.0, 20.0));
    }

    #[test]
    fn repeat_scales() {
        assert_eq!(Cost::new(2.0, 3.0).repeat(4), Cost::new(8.0, 12.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cost = (0..3).map(|_| Cost::new(1.0, 1.0)).sum();
        assert_eq!(total, Cost::new(3.0, 3.0));
    }

    #[test]
    fn gpu_kernel_memory_bound_when_traffic_dominates() {
        let gpu = GpuCostParams::default();
        // Lots of bytes, few flops: latency tracks DRAM time + launch.
        let c = gpu.kernel(9_000_000, 10);
        let mem_time = 9_000_000.0 / gpu.dram_bytes_per_ns;
        assert!((c.latency_ns - (mem_time + gpu.kernel_launch_ns)).abs() < 1.0);
    }

    #[test]
    fn gpu_kernel_energy_includes_both() {
        let gpu = GpuCostParams::default();
        let c = gpu.kernel(100, 100);
        let expect = 100.0 * gpu.dram_byte_pj + 100.0 * gpu.flop_pj;
        assert!((c.energy_pj - expect).abs() < 1e-9);
    }
}
