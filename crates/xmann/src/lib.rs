//! X-MANN: a transposable-crossbar architecture for memory-augmented
//! neural networks — paper Sec. III, ref. \[7\].
//!
//! The differentiable memory of a MANN is its bottleneck: every soft read,
//! soft write and similarity scan touches all `M × D` stored elements.
//! X-MANN keeps the memory *inside* transposable crossbar tiles so those
//! kernels become one or two fixed-latency crossbar operations, with a
//! near-memory SFU handling softmax/divide and a global reduce unit
//! combining per-tile partials.
//!
//! This crate is a functional + analytical simulator of that architecture:
//!
//! * [`arch`] — the tile hierarchy executing exact math while charging
//!   event-accurate energy/latency.
//! * [`baseline`] — the GPU + DRAM implementation of the same kernels.
//! * [`cost`] — the cost vocabulary and technology constants.
//! * [`workloads`] — the MANN benchmark suite and comparison harness that
//!   regenerates the paper's speedup/energy table (experiment E6).
//!
//! # Example
//!
//! ```
//! use enw_xmann::workloads::{run_benchmark, MannBenchmark};
//! use enw_xmann::arch::XmannConfig;
//! use enw_xmann::cost::{GpuCostParams, XmannCostParams};
//! use enw_numerics::rng::Rng64;
//!
//! let mut rng = Rng64::new(0);
//! let bench = MannBenchmark { name: "demo", slots: 4096, dim: 64, queries: 2 };
//! let cmp = run_benchmark(
//!     &bench, XmannConfig::default(), XmannCostParams::default(),
//!     GpuCostParams::default(), &mut rng);
//! assert!(cmp.speedup() > 1.0);
//! ```

pub mod arch;
pub mod baseline;
pub mod cost;
pub mod error;
pub mod workloads;

pub use arch::{OpResult, Xmann, XmannConfig, XmannConfigBuilder};
pub use baseline::GpuMann;
pub use cost::{Cost, GpuCostParams, XmannCostParams};
pub use error::XmannError;
pub use workloads::{benchmark_suite, run_benchmark, run_suite, Comparison, MannBenchmark};
