//! The X-MANN architecture: banks of subarrays of transposable
//! crossbar-based processing tiles (TCPTs), a near-memory SFU per tile and
//! a global reduce unit (paper Fig. 4, ref. \[7\]).
//!
//! The simulator is *functional + analytical*: every differentiable-memory
//! operation computes its exact numerical result (checked against the
//! `enw-mann` reference in integration tests) while charging the
//! event-accurate energy/latency of the datapath that would produce it.

use crate::cost::{Cost, XmannCostParams};
use enw_mann::memory::DifferentiableMemory;
use enw_numerics::vector::softmax_into;

/// Geometry of the tile hierarchy.
///
/// Construct via [`XmannConfig::builder`]; direct struct-literal
/// construction in downstream code is deprecated (it bypasses
/// validation and will stop compiling as fields are added).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmannConfig {
    /// Crossbar rows per TCPT (memory slots per tile).
    pub tile_rows: usize,
    /// Crossbar columns per TCPT (feature dimensions per tile).
    pub tile_cols: usize,
    /// TCPTs sharing one subarray bus.
    pub tiles_per_subarray: usize,
    /// Physical TCPTs on the accelerator. A memory needing more tiles
    /// than this is processed in serial passes (the chip is finite;
    /// without this bound, speedups over a linearly-scaling GPU would
    /// grow without limit instead of sitting in the paper's band).
    pub total_tiles: usize,
}

impl Default for XmannConfig {
    fn default() -> Self {
        XmannConfig { tile_rows: 256, tile_cols: 64, tiles_per_subarray: 8, total_tiles: 256 }
    }
}

impl XmannConfig {
    /// Starts a validating builder seeded with the default geometry.
    pub fn builder() -> XmannConfigBuilder {
        XmannConfigBuilder { cfg: XmannConfig::default() }
    }
}

/// Validating builder for [`XmannConfig`].
///
/// `build()` rejects degenerate tile hierarchies with a typed
/// [`XmannError`](crate::error::XmannError) instead of panicking at
/// [`Xmann::new`] time, which is the contract candidate-probing search
/// drivers rely on.
#[derive(Debug, Clone)]
pub struct XmannConfigBuilder {
    cfg: XmannConfig,
}

impl XmannConfigBuilder {
    /// Sets crossbar rows per TCPT.
    pub fn tile_rows(mut self, tile_rows: usize) -> Self {
        self.cfg.tile_rows = tile_rows;
        self
    }

    /// Sets crossbar columns per TCPT.
    pub fn tile_cols(mut self, tile_cols: usize) -> Self {
        self.cfg.tile_cols = tile_cols;
        self
    }

    /// Sets TCPTs sharing one subarray bus.
    pub fn tiles_per_subarray(mut self, tiles_per_subarray: usize) -> Self {
        self.cfg.tiles_per_subarray = tiles_per_subarray;
        self
    }

    /// Sets physical TCPTs on the accelerator.
    pub fn total_tiles(mut self, total_tiles: usize) -> Self {
        self.cfg.total_tiles = total_tiles;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<XmannConfig, crate::error::XmannError> {
        use crate::error::XmannError;
        if self.cfg.tile_rows == 0 {
            return Err(XmannError::InvalidConfig { reason: "tile_rows must be at least 1" });
        }
        if self.cfg.tile_cols == 0 {
            return Err(XmannError::InvalidConfig { reason: "tile_cols must be at least 1" });
        }
        if self.cfg.tiles_per_subarray == 0 {
            return Err(XmannError::InvalidConfig {
                reason: "tiles_per_subarray must be at least 1",
            });
        }
        if self.cfg.total_tiles == 0 {
            return Err(XmannError::InvalidConfig { reason: "total_tiles must be at least 1" });
        }
        if self.cfg.tiles_per_subarray > self.cfg.total_tiles {
            return Err(XmannError::InvalidConfig {
                reason: "tiles_per_subarray cannot exceed total_tiles",
            });
        }
        Ok(self.cfg)
    }
}

/// Result of one architectural operation: the numerical output plus its
/// cost.
#[derive(Debug, Clone, PartialEq)]
pub struct OpResult<T> {
    /// The functional result.
    pub value: T,
    /// Accounted energy/latency.
    pub cost: Cost,
}

/// An X-MANN accelerator instance holding one differentiable memory.
///
/// # Example
///
/// ```
/// use enw_xmann::arch::{Xmann, XmannConfig};
/// use enw_xmann::cost::XmannCostParams;
///
/// let mut x = Xmann::new(1024, 64, XmannConfig::default(), XmannCostParams::default());
/// let q = vec![0.1f32; 64];
/// let sim = x.similarity(&q);
/// assert_eq!(sim.value.len(), 1024);
/// assert!(sim.cost.energy_pj > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Xmann {
    memory: DifferentiableMemory,
    cfg: XmannConfig,
    params: XmannCostParams,
    total: Cost,
}

impl Xmann {
    /// Builds an accelerator for a `slots × dim` differentiable memory.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero.
    pub fn new(slots: usize, dim: usize, cfg: XmannConfig, params: XmannCostParams) -> Self {
        assert!(
            cfg.tile_rows > 0 && cfg.tile_cols > 0 && cfg.tiles_per_subarray > 0,
            "degenerate tile geometry"
        );
        Xmann { memory: DifferentiableMemory::new(slots, dim), cfg, params, total: Cost::zero() }
    }

    /// Memory slots.
    pub fn slots(&self) -> usize {
        self.memory.slots()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.memory.dim()
    }

    /// The stored memory (for functional verification).
    pub fn memory(&self) -> &DifferentiableMemory {
        &self.memory
    }

    /// Accumulated cost of every operation so far.
    pub fn total_cost(&self) -> Cost {
        self.total
    }

    /// Number of TCPT-sized partitions the memory needs.
    pub fn tile_count(&self) -> usize {
        self.row_tiles() * self.col_tiles()
    }

    /// Number of partitions concurrently resident on hardware.
    fn resident_tiles(&self) -> usize {
        self.tile_count().min(self.cfg.total_tiles)
    }

    /// Serial passes needed when the memory exceeds the hardware budget.
    pub fn passes(&self) -> usize {
        self.tile_count().div_ceil(self.cfg.total_tiles)
    }

    fn row_tiles(&self) -> usize {
        self.memory.slots().div_ceil(self.cfg.tile_rows)
    }

    fn col_tiles(&self) -> usize {
        self.memory.dim().div_ceil(self.cfg.tile_cols)
    }

    /// Loads memory contents exactly (initialization; not charged — the
    /// paper's results measure steady-state operation).
    pub fn load_memory(&mut self, rows: &[Vec<f32>]) {
        for (i, r) in rows.iter().enumerate() {
            self.memory.write_slot(i, r);
        }
    }

    /// Overwrites one slot (hard write, charged as one update phase on the
    /// owning tile row).
    pub fn write_slot(&mut self, slot: usize, word: &[f32]) -> Cost {
        self.memory.write_slot(slot, word);
        let cost =
            Cost::new(word.len() as f64 * self.params.write_pulse_pj, self.params.update_op_ns);
        self.total += cost;
        cost
    }

    /// Cost of one crossbar evaluation on every tile in parallel, with
    /// `inputs` DAC conversions and `outputs` ADC conversions per tile.
    fn crossbar_phase(&self, inputs: usize, outputs: usize) -> Cost {
        let macs = (self.memory.slots() * self.memory.dim()) as f64;
        let tiles = self.tile_count() as f64;
        let energy = macs * self.params.xbar_mac_pj
            + tiles * inputs as f64 * self.params.dac_pj
            + tiles * outputs as f64 * self.params.adc_pj;
        // Resident tiles evaluate concurrently; the shared ADCs serialize
        // the per-tile output conversions, and an over-budget memory adds
        // serial passes.
        let adc_rounds = outputs.div_ceil(self.params.adcs_per_tile) as f64;
        let latency =
            (self.params.xbar_op_ns + adc_rounds * self.params.adc_ns) * self.passes() as f64;
        Cost::new(energy, latency)
    }

    /// Number of subarrays (each with its own shared bus) the tiles
    /// occupy.
    fn subarrays(&self) -> usize {
        self.resident_tiles().div_ceil(self.cfg.tiles_per_subarray)
    }

    /// Cost of reducing per-tile partial vectors of length `len` across
    /// the column tiles (tree reduce in the global reduce unit) and
    /// shipping the result over the per-subarray buses, which operate in
    /// parallel.
    fn reduce_phase(&self, len: usize, partials: usize) -> Cost {
        if partials <= 1 {
            return Cost::zero();
        }
        let adds = len as f64 * (partials - 1) as f64;
        let stages = (partials as f64).log2().ceil();
        let bytes = len as f64 * partials as f64 * 4.0;
        let parallel_bw = self.params.bus_bytes_per_ns * self.subarrays() as f64;
        Cost::new(
            adds * self.params.reduce_add_pj + bytes * self.params.bus_byte_pj,
            stages * self.params.reduce_stage_ns + bytes / parallel_bw,
        )
    }

    /// SFU work of `ops` scalar operations, distributed across the
    /// per-tile SFUs (each TCPT integrates its own vPE/SPE, paper
    /// Sec. III-A4), so latency scales with the per-tile share.
    fn sfu_phase(&self, ops: usize) -> Cost {
        let per_tile = ops.div_ceil(self.resident_tiles());
        Cost::new(ops as f64 * self.params.sfu_op_pj, per_tile as f64 / self.params.sfu_ops_per_ns)
    }

    /// Similarity-measure operation (paper Sec. III-A2): dot products of
    /// the query against every memory row plus per-row L1 norms — *two
    /// crossbar operations* — then the SFU normalizes.
    ///
    /// Returns the normalized similarity `dot(m, q) / (‖m‖₁ + ε)` per row.
    ///
    /// # Panics
    ///
    /// Panics if the query width mismatches.
    pub fn similarity(&mut self, query: &[f32]) -> OpResult<Vec<f32>> {
        let mut value = vec![0.0f32; self.memory.slots()];
        let cost = self.similarity_into(query, &mut value);
        OpResult { value, cost }
    }

    /// [`similarity`](Xmann::similarity) into a caller-owned buffer of
    /// `slots` scores (`out` is fully overwritten); returns the charged
    /// cost. The dot-product intermediate lives in thread-local scratch,
    /// so a warm call performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the query width or output length mismatches.
    // enw:hot
    pub fn similarity_into(&mut self, query: &[f32], out: &mut [f32]) -> Cost {
        assert_eq!(query.len(), self.memory.dim(), "query width mismatch");
        assert_eq!(out.len(), self.memory.slots(), "similarity output length mismatch");
        let mut dots = enw_parallel::scratch::take_f32(self.memory.slots());
        self.memory.matrix().matvec_into(query, &mut dots);
        // Second crossbar op: an all-ones column vector read against the
        // magnitude array yields every row's L1 norm in parallel; the SFU
        // divide consumes each norm as it is produced.
        for (s, (o, &d)) in out.iter_mut().zip(dots.iter()).enumerate() {
            let n: f32 = self.memory.slot(s).iter().map(|v| v.abs()).sum();
            *o = d / (n + 1e-6);
        }
        // Cost: two crossbar phases (dot + norm), inputs = dim per column
        // tile, outputs = rows per tile; SFU does one divide per slot.
        let phase = self.crossbar_phase(self.cfg.tile_cols, self.cfg.tile_rows);
        let reduce = self.reduce_phase(self.memory.slots(), self.col_tiles());
        let sfu = self.sfu_phase(self.memory.slots());
        let cost = phase.repeat(2) + reduce + sfu;
        self.total += cost;
        let (slots, dim) = (self.memory.slots() as u64, self.memory.dim() as u64);
        // Two passes over the memory (dot + norm), one query vector in,
        // one score per slot out.
        enw_trace::record_span_io(
            "xmann/similarity",
            2 * slots * dim,
            4 * (2 * slots * dim + dim),
            4 * slots,
        );
        cost
    }

    /// Content addressing: similarity + softmax in the SFU.
    pub fn content_address(&mut self, query: &[f32], beta: f32) -> OpResult<Vec<f32>> {
        let mut value = vec![0.0f32; self.memory.slots()];
        let cost = self.content_address_into(query, beta, &mut value);
        OpResult { value, cost }
    }

    /// [`content_address`](Xmann::content_address) into a caller-owned
    /// buffer (`out` is fully overwritten); returns the charged cost. The
    /// similarity scores stage through thread-local scratch.
    ///
    /// # Panics
    ///
    /// Panics if the query width or output length mismatches.
    // enw:hot
    pub fn content_address_into(&mut self, query: &[f32], beta: f32, out: &mut [f32]) -> Cost {
        let mut sim = enw_parallel::scratch::take_f32(self.memory.slots());
        let sim_cost = self.similarity_into(query, &mut sim);
        softmax_into(&sim, beta, out);
        // Softmax: ~3 SFU ops per slot (exp, sum contribution, divide).
        let sfu = self.sfu_phase(3 * self.memory.slots());
        self.total += sfu;
        sim_cost + sfu
    }

    /// Soft read (paper Sec. III-A3): a *single* crossbar operation with
    /// the attention weights driven on the rows and outputs read along the
    /// columns (the transposable direction).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != slots`.
    pub fn soft_read(&mut self, weights: &[f32]) -> OpResult<Vec<f32>> {
        let mut value = vec![0.0f32; self.memory.dim()];
        let cost = self.soft_read_into(weights, &mut value);
        OpResult { value, cost }
    }

    /// [`soft_read`](Xmann::soft_read) into a caller-owned buffer of `dim`
    /// elements (`out` is fully overwritten); returns the charged cost.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != slots` or `out.len() != dim`.
    // enw:hot
    pub fn soft_read_into(&mut self, weights: &[f32], out: &mut [f32]) -> Cost {
        self.memory.soft_read_into(weights, out);
        let phase = self.crossbar_phase(self.cfg.tile_rows, self.cfg.tile_cols);
        let reduce = self.reduce_phase(self.memory.dim(), self.row_tiles());
        let cost = phase + reduce;
        self.total += cost;
        let (slots, dim) = (self.memory.slots() as u64, self.memory.dim() as u64);
        enw_trace::record_span_io(
            "xmann/soft_read",
            slots * dim,
            4 * (slots * dim + slots),
            4 * dim,
        );
        cost
    }

    /// Soft write: a rank-1 parallel update of every tile (weights ×
    /// (add − erase∘M) in NTM semantics), one update phase plus SFU
    /// preprocessing of the erase/add vectors.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn soft_write(&mut self, weights: &[f32], erase: &[f32], add: &[f32]) -> OpResult<()> {
        self.memory.soft_write(weights, erase, add);
        let pulses = (self.memory.slots() * self.memory.dim()) as f64;
        let update = Cost::new(
            pulses * self.params.write_pulse_pj,
            self.params.update_op_ns * self.passes() as f64,
        );
        let sfu = self.sfu_phase(2 * self.memory.dim());
        let cost = update + sfu;
        self.total += cost;
        let (slots, dim) = (self.memory.slots() as u64, self.memory.dim() as u64);
        // Rank-1 update: reads the weight/erase/add vectors, rewrites M.
        enw_trace::record_span_io(
            "xmann/soft_write",
            slots * dim,
            4 * (slots * dim + slots + 2 * dim),
            4 * slots * dim,
        );
        OpResult { value: (), cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Xmann {
        let mut x = Xmann::new(
            4,
            3,
            XmannConfig { tile_rows: 2, tile_cols: 2, tiles_per_subarray: 2, total_tiles: 4 },
            XmannCostParams::default(),
        );
        x.load_memory(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.5, 0.5, 0.0],
        ]);
        x
    }

    #[test]
    fn tile_partitioning() {
        let x = tiny();
        // 4 slots / 2 rows = 2 row tiles; 3 dims / 2 cols = 2 col tiles.
        assert_eq!(x.tile_count(), 4);
    }

    #[test]
    fn similarity_favors_matching_row() {
        let mut x = tiny();
        let r = x.similarity(&[1.0, 0.0, 0.0]);
        let best = enw_numerics::vector::argmax(&r.value);
        assert_eq!(best, 0);
    }

    #[test]
    fn soft_read_matches_reference() {
        let mut x = tiny();
        let w = [0.25f32, 0.25, 0.25, 0.25];
        let r = x.soft_read(&w);
        let reference = x.memory().soft_read(&w);
        assert_eq!(r.value, reference);
    }

    #[test]
    fn content_address_is_distribution() {
        let mut x = tiny();
        let r = x.content_address(&[0.0, 1.0, 0.0], 5.0);
        assert!((r.value.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn soft_write_updates_memory() {
        let mut x = tiny();
        x.soft_write(&[1.0, 0.0, 0.0, 0.0], &[1.0, 1.0, 1.0], &[9.0, 9.0, 9.0]);
        assert_eq!(x.memory().slot(0), &[9.0, 9.0, 9.0]);
    }

    #[test]
    fn costs_accumulate() {
        let mut x = tiny();
        assert_eq!(x.total_cost(), Cost::zero());
        x.similarity(&[1.0, 0.0, 0.0]);
        let after_one = x.total_cost();
        assert!(after_one.energy_pj > 0.0 && after_one.latency_ns > 0.0);
        x.soft_read(&[0.25; 4]);
        assert!(x.total_cost().energy_pj > after_one.energy_pj);
    }

    #[test]
    fn similarity_is_two_crossbar_ops_latency() {
        // The similarity op's crossbar latency must be twice the soft
        // read's crossbar phase (2 ops vs 1), independent of array size —
        // the paper's "two crossbar operations" claim.
        let p = XmannCostParams::default();
        let mut small = Xmann::new(64, 32, XmannConfig::default(), p);
        let mut large = Xmann::new(4096, 32, XmannConfig::default(), p);
        let cs = small.similarity(&[0.1; 32]).cost;
        let cl = large.similarity(&[0.1; 32]).cost;
        // Crossbar phase latency identical; only reduce/SFU grow.
        assert!(cl.latency_ns < cs.latency_ns * 64.0, "latency must not scale with slots");
    }

    #[test]
    fn bigger_memory_costs_more_energy() {
        let p = XmannCostParams::default();
        let mut small = Xmann::new(64, 32, XmannConfig::default(), p);
        let mut large = Xmann::new(4096, 32, XmannConfig::default(), p);
        let es = small.similarity(&[0.1; 32]).cost.energy_pj;
        let el = large.similarity(&[0.1; 32]).cost.energy_pj;
        assert!(el > es * 10.0);
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(XmannConfig::builder().build().unwrap(), XmannConfig::default());
    }

    #[test]
    fn builder_rejects_zero_total_tiles() {
        let err = XmannConfig::builder().total_tiles(0).build().unwrap_err();
        assert!(err.to_string().contains("total_tiles"), "{err}");
    }

    #[test]
    fn builder_rejects_subarray_larger_than_chip() {
        let err =
            XmannConfig::builder().tiles_per_subarray(32).total_tiles(16).build().unwrap_err();
        assert!(err.to_string().contains("tiles_per_subarray"), "{err}");
    }

    #[test]
    fn builder_sets_geometry() {
        let cfg =
            XmannConfig::builder().tile_rows(64).tile_cols(32).total_tiles(16).build().unwrap();
        assert_eq!((cfg.tile_rows, cfg.tile_cols, cfg.total_tiles), (64, 32, 16));
    }
}
