//! The MANN benchmark suite and the X-MANN-vs-GPU comparison harness
//! (paper Sec. III-B: "a suite of MANN benchmarks with diverse memory
//! capacities").

use crate::arch::{Xmann, XmannConfig};
use crate::baseline::GpuMann;
use crate::cost::{Cost, GpuCostParams, XmannCostParams};
use enw_numerics::rng::Rng64;

/// One MANN benchmark: a differentiable-memory working set and an episode
/// of memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MannBenchmark {
    /// Human-readable name.
    pub name: &'static str,
    /// Memory slots.
    pub slots: usize,
    /// Feature width.
    pub dim: usize,
    /// Queries per episode; each query performs one content-address
    /// (similarity + softmax), one soft read and one soft write —
    /// the NTM inner loop.
    pub queries: usize,
}

/// The benchmark suite: capacities spanning small episodic tasks to the
/// "thousands to millions of memory locations" the paper warns about.
pub fn benchmark_suite() -> Vec<MannBenchmark> {
    vec![
        MannBenchmark { name: "omniglot-episodic", slots: 4096, dim: 64, queries: 32 },
        MannBenchmark { name: "babi-qa", slots: 16_384, dim: 64, queries: 32 },
        MannBenchmark { name: "graph-traversal", slots: 65_536, dim: 96, queries: 32 },
        MannBenchmark { name: "london-underground", slots: 131_072, dim: 96, queries: 32 },
        MannBenchmark { name: "rare-events-lm", slots: 524_288, dim: 128, queries: 32 },
    ]
}

/// Comparison outcome for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Which benchmark.
    pub name: &'static str,
    /// Memory slots (for the table).
    pub slots: usize,
    /// Total cost on X-MANN.
    pub xmann: Cost,
    /// Total cost on the GPU baseline.
    pub gpu: Cost,
}

impl Comparison {
    /// GPU latency / X-MANN latency.
    pub fn speedup(&self) -> f64 {
        self.gpu.latency_ns / self.xmann.latency_ns
    }

    /// GPU energy / X-MANN energy.
    pub fn energy_reduction(&self) -> f64 {
        self.gpu.energy_pj / self.xmann.energy_pj
    }
}

/// Runs one benchmark on both platforms with identical inputs and memory
/// contents; returns the accounted costs.
///
/// Functional outputs are asserted equal where the platforms implement the
/// same math (soft read/write); similarity differs by design (cosine on
/// GPU vs. the dot/L1 crossbar scheme), matching the paper's setups.
pub fn run_benchmark(
    bench: &MannBenchmark,
    xmann_cfg: XmannConfig,
    xmann_params: XmannCostParams,
    gpu_params: GpuCostParams,
    rng: &mut Rng64,
) -> Comparison {
    let mut x = Xmann::new(bench.slots, bench.dim, xmann_cfg, xmann_params);
    let mut g = GpuMann::new(bench.slots, bench.dim, gpu_params);
    // Identical random memory contents.
    let rows: Vec<Vec<f32>> = (0..bench.slots)
        .map(|_| (0..bench.dim).map(|_| rng.range(-0.5, 0.5) as f32).collect())
        .collect();
    x.load_memory(&rows);
    g.load_memory(&rows);
    let erase = vec![0.5f32; bench.dim];
    for _ in 0..bench.queries {
        let q: Vec<f32> = (0..bench.dim).map(|_| rng.range(-1.0, 1.0) as f32).collect();
        let wx = x.content_address(&q, 5.0);
        let wg = g.content_address(&q, 5.0);
        let rx = x.soft_read(&wx.value);
        let rg = g.soft_read(&wg.value);
        debug_assert_eq!(rx.value.len(), rg.value.len());
        x.soft_write(&wx.value, &erase, &q);
        g.soft_write(&wg.value, &erase, &q);
    }
    Comparison { name: bench.name, slots: bench.slots, xmann: x.total_cost(), gpu: g.total_cost() }
}

/// Runs the full suite with default parameters.
pub fn run_suite(rng: &mut Rng64) -> Vec<Comparison> {
    benchmark_suite()
        .iter()
        .map(|b| {
            run_benchmark(
                b,
                XmannConfig::default(),
                XmannCostParams::default(),
                GpuCostParams::default(),
                rng,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_diverse_capacities() {
        let suite = benchmark_suite();
        assert!(suite.len() >= 5);
        let min = suite.iter().map(|b| b.slots).min().expect("non-empty");
        let max = suite.iter().map(|b| b.slots).max().expect("non-empty");
        assert!(max / min >= 100, "capacities must span orders of magnitude");
    }

    #[test]
    fn xmann_wins_on_small_benchmark() {
        let mut rng = Rng64::new(1);
        let bench = MannBenchmark { name: "tiny", slots: 2048, dim: 64, queries: 4 };
        let cmp = run_benchmark(
            &bench,
            XmannConfig::default(),
            XmannCostParams::default(),
            GpuCostParams::default(),
            &mut rng,
        );
        assert!(cmp.speedup() > 1.0, "speedup {}", cmp.speedup());
        assert!(cmp.energy_reduction() > 1.0, "energy {}", cmp.energy_reduction());
    }

    #[test]
    fn gains_in_paper_ballpark_on_midsize_benchmark() {
        // Paper Sec. III-B: 23.7–45.7× speedup, 75.1–267.1× energy. Our
        // substitute cost model should land within a factor ~3 of those
        // bands (shape check, not absolute-number check).
        let mut rng = Rng64::new(2);
        let bench = MannBenchmark { name: "mid", slots: 65_536, dim: 64, queries: 4 };
        let cmp = run_benchmark(
            &bench,
            XmannConfig::default(),
            XmannCostParams::default(),
            GpuCostParams::default(),
            &mut rng,
        );
        let s = cmp.speedup();
        let e = cmp.energy_reduction();
        assert!((8.0..150.0).contains(&s), "speedup {s} outside plausibility band");
        assert!((25.0..800.0).contains(&e), "energy reduction {e} outside plausibility band");
    }

    #[test]
    fn energy_reduction_grows_with_capacity() {
        // The GPU pays DRAM traffic linear in capacity; X-MANN pays mostly
        // peripheral costs. Bigger memory → bigger advantage, the trend
        // behind the paper's range of ratios.
        let mut rng = Rng64::new(3);
        let small = run_benchmark(
            &MannBenchmark { name: "s", slots: 4096, dim: 64, queries: 2 },
            XmannConfig::default(),
            XmannCostParams::default(),
            GpuCostParams::default(),
            &mut rng,
        );
        let large = run_benchmark(
            &MannBenchmark { name: "l", slots: 262_144, dim: 64, queries: 2 },
            XmannConfig::default(),
            XmannCostParams::default(),
            GpuCostParams::default(),
            &mut rng,
        );
        assert!(large.speedup() > small.speedup());
    }
}
