//! Typed failures for the X-MANN architecture models.
//!
//! Geometry used to be validated by asserts in [`crate::arch::Xmann::new`]
//! alone; the builder path returns `Result<_, XmannError>` so candidate
//! bank shapes can be rejected without panicking — the contract the
//! DSE engine's `Tunable::decode` relies on.

use std::error::Error;
use std::fmt;

/// Why an X-MANN configuration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmannError {
    /// A configuration violated a structural constraint.
    InvalidConfig {
        /// Which constraint failed.
        reason: &'static str,
    },
}

impl fmt::Display for XmannError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmannError::InvalidConfig { reason } => {
                write!(f, "invalid X-MANN config: {reason}")
            }
        }
    }
}

impl Error for XmannError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_constraint() {
        let e = XmannError::InvalidConfig { reason: "tile_rows must be at least 1" };
        assert!(e.to_string().contains("tile_rows"), "{e}");
    }
}
